"""SWAT — Stream summarization using a Wavelet-based Approximation Tree.

This is the paper's primary contribution (Section 2).  A :class:`Swat` over a
sliding window of ``N = 2^n`` values keeps ``n`` levels of approximations;
level ``l`` has up to three nodes (*Right*, *Shift*, *Left*) of ``k`` wavelet
coefficients each, except the topmost level which needs only *Right* — giving
the paper's ``3 log N - 2`` node count.  Level ``l`` refreshes every ``2^l``
arrivals by the shift pipeline of Figure 3(a)::

    contents(L_l) := contents(S_l)
    contents(S_l) := contents(R_l)
    contents(R_l) := DWT(R_{l-1}, L_{l-1})

so the amortized per-arrival maintenance cost is ``O(k)`` and the space is
``O(k log N)``.

Usage::

    tree = Swat(window_size=256)
    for value in stream:
        tree.update(value)
    ans = tree.answer(exponential_query(length=16))
"""

from __future__ import annotations

import math
import time
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .. import contracts
from ..obs import causal as causal_mod
from ..obs import metrics as obs
from ..wavelets.haar import (
    batch_combine_haar,
    batch_haar_decompose,
    batch_leaf_coeffs,
    combine_haar,
    haar_average,
    largest_coefficients,
    leaf_coeffs,
    sparse_combine,
)
from ..wavelets.transform import full_decompose, is_power_of_two, truncate
from .coverage import Cover, build_cover
from .errors import require_finite
from .node import Role, SwatNode
from .queries import InnerProductQuery, RangeQuery

__all__ = ["Swat", "QueryAnswer"]


class QueryAnswer:
    """Result of an inner-product query against a :class:`Swat`.

    Attributes
    ----------
    value:
        The approximate inner product.
    estimates:
        Per-query-index approximations, aligned with the query's ``indices``.
    nodes_used:
        The cover set ``V`` (for diagnostics / the paper's complexity claims).
    n_extrapolated:
        How many indices had to be answered by clamping to the nearest
        segment of a reduced-level tree (0 for a full tree).
    """

    __slots__ = ("value", "estimates", "nodes_used", "n_extrapolated", "error_bound")

    def __init__(
        self,
        value: float,
        estimates: np.ndarray,
        nodes_used: List[SwatNode],
        n_extrapolated: int,
        error_bound: Optional[float] = None,
    ) -> None:
        self.value = value
        self.estimates = estimates
        self.nodes_used = nodes_used
        self.n_extrapolated = n_extrapolated
        # Certified bound on |true - value| (only when the tree tracks
        # per-node deviations); None when not tracked.
        self.error_bound = error_bound

    def __float__(self) -> float:
        return float(self.value)

    def __repr__(self) -> str:
        return f"QueryAnswer(value={self.value!r}, nodes={len(self.nodes_used)})"


class Swat:
    """Multi-resolution sliding-window summary of a data stream.

    Parameters
    ----------
    window_size:
        Sliding window length ``N``; must be a power of two, at least 4.
    k:
        Wavelet coefficients retained per node (``k = 1`` keeps the segment
        average — the configuration of every experiment in the paper).
    wavelet:
        Basis name (see :func:`repro.wavelets.available_wavelets`).  Haar
        nodes combine in ``O(k)``; other bases use the generic
        reconstruct-and-retransform combine described in Section 2.2.
    min_level:
        Coarsest-resolution mode of Section 2.5: maintain only levels
        ``min_level .. log2(N) - 1``.  Queries about values newer than the
        coarsest maintained segment are answered by clamped extrapolation and
        carry correspondingly larger error.
    use_raw_leaves:
        The paper's Figure 3(a) footnote makes the raw values ``d_0`` and
        ``d_1`` part of the tree (as ``R_{-1}`` and ``L_{-1}``): they are
        required update state, so queries serve window indices 0 and 1 from
        them exactly.  This is what makes exponentially weighted queries over
        the most recent values so accurate in the paper's experiments.  Set
        False to answer purely from level >= 0 approximations (the
        illustrative cover of Section 2.4).  Ignored (off) when
        ``min_level > 0``, where the paper's reduced tree is the whole story.
    track_deviation:
        Maintain a certified per-node bound on max |true - reconstruction|
        (Section 3's "range denoting the maximum deviation").  Answers then
        carry an ``error_bound`` and :meth:`can_answer` checks a query's
        precision requirement.  Defined for 1-coefficient Haar trees.
    selection:
        Which ``k`` coefficients a node retains: ``"first"`` (the coarsest
        ``k``, the paper's default reading) or ``"largest"`` (the top-``k``
        by magnitude — the classical Gilbert et al. choice; better on bursty
        data, needs position bookkeeping).  Haar only for ``"largest"``.
    check_invariants:
        Run :func:`repro.contracts.check_swat` after every update.  ``None``
        (the default) defers to the ``REPRO_CHECK_INVARIANTS`` environment
        switch; a disabled tree pays one attribute read per update.
    """

    def __init__(
        self,
        window_size: int,
        k: int = 1,
        wavelet: str = "haar",
        min_level: int = 0,
        use_raw_leaves: bool = True,
        track_deviation: bool = False,
        selection: str = "first",
        check_invariants: Optional[bool] = None,
    ) -> None:
        if not is_power_of_two(window_size) or window_size < 4:
            raise ValueError(f"window_size must be a power of two >= 4, got {window_size}")
        n_levels = int(math.log2(window_size))
        if not 0 <= min_level < n_levels:
            raise ValueError(f"min_level must be in [0, {n_levels - 1}], got {min_level}")
        if k < 1:
            raise ValueError("k must be >= 1")
        if track_deviation and (k != 1 or wavelet not in ("haar", "db1")):
            raise ValueError(
                "deviation tracking is defined for 1-coefficient Haar trees "
                "(the Section 3 setting)"
            )
        if selection not in ("first", "largest"):
            raise ValueError(f"selection must be 'first' or 'largest', got {selection!r}")
        if selection == "largest" and wavelet not in ("haar", "db1"):
            raise ValueError("largest-k selection is implemented for the Haar basis")
        if selection == "largest" and track_deviation:
            raise ValueError(
                "deviation tracking uses the first-k (k=1) layout; largest-k "
                "with k=1 is identical to it anyway"
            )
        self.selection = selection
        self.track_deviation = bool(track_deviation)
        self.window_size = window_size
        self.k = int(k)
        self.wavelet = wavelet
        self.min_level = int(min_level)
        # Remember what the caller asked for: a later reconfigure() back to
        # min_level == 0 restores raw-leaf serving.
        self._raw_leaves_requested = bool(use_raw_leaves)
        self.use_raw_leaves = self._raw_leaves_requested and min_level == 0
        self.n_levels = n_levels
        self._is_haar = wavelet in ("haar", "db1")
        self._check_invariants = contracts.resolve_check_flag(check_invariants)
        # Ambient causal tracer (None when tracing is off); maintenance and
        # query spans run on the perf_counter clock.
        self.causal = causal_mod.current_causal()
        self._time = 0
        # Restore epoch: bumped by restore_state so caches holding a
        # reference to this tree (compiled query plans, warmth gates) can
        # detect that the contents were swapped out beneath them.
        self.epoch = 0
        # Raw ring buffer feeding the coarsest maintained level; for
        # min_level == 0 it is just the last two values (the paper's
        # "R_{-1} and L_{-1} are data values d_0 and d_1").
        self._buffer: Deque[float] = deque(maxlen=1 << (min_level + 1))
        # levels[l] maps role -> node; the top level only has R.
        self._levels: List[Dict[str, SwatNode]] = []
        for level in range(n_levels):
            roles = (Role.RIGHT,) if level == n_levels - 1 else Role.SCAN_ORDER
            self._levels.append({role: SwatNode(level, role) for role in roles})
        # Live-reconfiguration state (:meth:`reconfigure`).  A tree is
        # *settling* from the moment a min_level change disturbs the shift
        # pipeline until every maintained node is back on the Figure 3(a)
        # refresh cadence; while settling, ingestion takes the scalar path
        # and queries may extrapolate across the not-yet-refilled levels.
        self._settling = False
        # Arrival clock value after which nbytes can no longer drift (node
        # coefficient vectors have all been refreshed at the current k).
        self._nbytes_settled_at = 0

    # ------------------------------------------------------------------ state

    @property
    def time(self) -> int:
        """Total number of arrivals observed."""
        return self._time

    @property
    def size(self) -> int:
        """Number of window indices currently valid (min(time, N))."""
        return min(self._time, self.window_size)

    @property
    def num_nodes(self) -> int:
        """Total node count: the paper's ``3 log N - 2``."""
        return sum(len(lv) for lv in self._levels[self.min_level :])

    @property
    def phase(self) -> int:
        """Arrival clock modulo the coarsest refresh period (``2^{L-1}``).

        For a warm tree every node's window-relative segment — and hence the
        cover structure of any fixed index set — is a pure function of this
        phase; compiled query plans (:mod:`repro.core.plan`) are keyed by it.
        """
        return self._time & ((self.window_size >> 1) - 1)

    def raw_leaf_count(self) -> int:
        """Window indices servable exactly from the raw leaves ``d_0``/``d_1``."""
        if not self.use_raw_leaves:
            return 0
        return min(len(self._buffer), 2, self.size)

    def raw_leaf(self, which: int) -> float:
        """The raw leaf at window index ``which`` (0 = newest)."""
        return self._buffer[-1 - which]

    @property
    def memory_coefficients(self) -> int:
        """Stored coefficients across maintained, filled nodes (space metric)."""
        return sum(
            node.coeffs.size
            for lv in self._levels[self.min_level :]
            for node in lv.values()
            if node.coeffs is not None
        )

    @property
    def nbytes(self) -> int:
        """Exact array bytes held by the summary (analytic, no ``getsizeof``).

        Counts every maintained node's coefficient/position arrays plus the
        raw ring buffer (8 bytes per retained float).  This is the quantity
        the resource governor budgets: the state that scales with ``k`` and
        ``min_level``.  Container overheads (dicts, the node objects
        themselves) are configuration-independent bookkeeping and excluded.
        """
        total = 8 * len(self._buffer)
        for lv in self._levels[self.min_level :]:
            for node in lv.values():
                total += node.nbytes
        return total

    @property
    def memory_settled(self) -> bool:
        """True when :attr:`nbytes` can no longer change without a reconfigure.

        A warm, non-settling tree whose nodes have all refreshed since the
        last :meth:`reconfigure` holds a constant number of array bytes; the
        ensemble ledger uses this O(1) check to skip per-arrival accounting
        on steady-state trees.
        """
        return (
            not self._settling
            and self._time >= self.window_size
            and self._time >= self._nbytes_settled_at
        )

    def node(self, level: int, role: str) -> SwatNode:
        """Access a node by level and role (``"R"``, ``"S"``, ``"L"``)."""
        return self._levels[level][role]

    def nodes(self) -> List[SwatNode]:
        """Maintained nodes in the paper's scan order (level asc, R, S, L)."""
        out: List[SwatNode] = []
        for level in range(self.min_level, self.n_levels):
            lv = self._levels[level]
            out.extend(lv[role] for role in Role.SCAN_ORDER if role in lv)
        return out

    @property
    def is_warm(self) -> bool:
        """True once every maintained node holds an approximation."""
        return all(node.is_filled for node in self.nodes())

    # ---------------------------------------------------------------- updates

    def update(self, value: float) -> None:
        """Ingest one stream value (the Update_Tree procedure of Figure 3(a))."""
        # Instrumentation (repro.obs) is guarded so a metrics-off process
        # pays only the module-attribute checks on this hot path.
        _t0 = (
            time.perf_counter()
            if obs.ENABLED or self.causal is not None
            else None
        )
        value = float(value)
        require_finite(value)
        self._time += 1
        t = self._time
        self._buffer.append(value)
        max_level = min(_trailing_zeros(t), self.n_levels - 1)
        for level in range(self.min_level, max_level + 1):
            lv = self._levels[level]
            if Role.SHIFT in lv:  # all but the top level
                lv[Role.LEFT].copy_from(lv[Role.SHIFT])
                lv[Role.SHIFT].copy_from(lv[Role.RIGHT])
            fresh = self._fresh_right(level, t)
            if fresh is not None:
                coeffs, deviation, positions = fresh
                lv[Role.RIGHT].set_contents(coeffs, t, deviation, positions)
        if self._settling and self._is_on_cadence():
            self._settling = False
        if self._check_invariants:
            contracts.check_swat(self)
        if obs.ENABLED and _t0 is not None:
            obs.counter("swat.arrivals").inc()
            shifted = max_level + 1 - self.min_level
            if shifted > 0:
                obs.counter("swat.levels_shifted").inc(shifted)
            obs.histogram("swat.maintenance.latency").observe(time.perf_counter() - _t0)
        if self.causal is not None and _t0 is not None:
            # In-process spans run on the perf_counter clock (never mixed
            # with virtual-time spans inside one trace).
            self.causal.start_span("swat.update", at=_t0, site="swat").finish(
                time.perf_counter(), levels=max_level + 1 - self.min_level
            )

    def extend(self, values: Iterable[float]) -> None:
        """Ingest many values in arrival order.

        Haar trees with first-``k`` selection take the vectorized block
        cascade of :meth:`_extend_batch` — ``O(B log N)`` NumPy work for a
        block of ``B`` arrivals, bit-identical to replaying :meth:`update`
        value by value.  Generic wavelets and largest-``k`` trees fall back
        to the scalar loop, as does a tree still settling after a
        :meth:`reconfigure` (the batch cascade's inter-block carry assumes
        an undisturbed shift pipeline).
        """
        if self._is_haar and self.selection == "first" and not self._settling:
            if isinstance(values, np.ndarray):
                block = np.asarray(values, dtype=np.float64)
            else:
                block = np.asarray(list(values), dtype=np.float64)
            if block.ndim != 1:
                raise ValueError(
                    f"extend expects a flat sequence of values, got shape {block.shape}"
                )
            self._extend_batch(block)
            return
        for v in values:
            self.update(v)

    def _extend_batch(self, block: np.ndarray) -> None:
        """Vectorized Update_Tree over a block of ``B`` arrivals.

        One streaming Haar cascade per block: level ``l``'s refresh outputs
        inside the block are computed with a single vectorized butterfly
        over the level below's outputs, and only the last three are
        materialized into ``L/S/R``.  The first refresh's *older* child may
        predate the block; it is read from the pre-block ``R`` or ``S``
        node of the level below (:meth:`_carry_node`) — the tree itself is
        the inter-block carry state, so blocks of any size compose exactly.
        Every float operation mirrors the scalar path op for op, so the
        resulting tree state is bit-identical to a scalar replay.
        """
        b = int(block.size)
        if b == 0:
            return
        _t0 = (
            time.perf_counter()
            if obs.ENABLED or self.causal is not None
            else None
        )
        require_finite(block)
        t0 = self._time
        tend = t0 + b
        m = self.min_level
        seg = 1 << (m + 1)
        track = self.track_deviation
        # Raw history reachable by in-block level-m refreshes: the ring
        # buffer then the block.  concat[i] arrived at t0 - n_prev + 1 + i.
        n_prev = len(self._buffer)
        if n_prev:
            concat = np.empty(n_prev + b, dtype=np.float64)
            concat[:n_prev] = np.fromiter(self._buffer, dtype=np.float64, count=n_prev)
            concat[n_prev:] = block
        else:
            concat = block
        # (level, first refresh time, coeff rows, deviation rows); a level's
        # refresh at time t produces contents iff t >= 2^{level+1} (its full
        # segment has been observed) — earlier refreshes only shift empty
        # nodes, a content no-op the batch path can skip outright.
        outputs: List[Tuple[int, int, np.ndarray, Optional[np.ndarray]]] = []
        first_t = max(seg, ((t0 >> m) + 1) << m)
        if first_t <= tend:
            count = ((tend - first_t) >> m) + 1
            times = first_t + ((1 << m) * np.arange(count, dtype=np.int64))
            devs: Optional[np.ndarray] = None
            if m == 0:
                newer_idx = times - t0 + n_prev - 1
                newer = concat[newer_idx]
                older = concat[newer_idx - 1]
                rows = batch_leaf_coeffs(newer, older, self.k)
                if track:
                    devs = np.abs(newer - older) / 2.0
            else:
                start_idx = times - seg - t0 + n_prev
                segs = np.lib.stride_tricks.sliding_window_view(concat, seg)[start_idx]
                rows = batch_haar_decompose(segs)[:, : min(self.k, seg)].copy()
                if track:
                    devs = np.abs(segs - segs.mean(axis=1, keepdims=True)).max(axis=1)
            outputs.append((m, first_t, rows, devs))
            for level in range(m + 1, self.n_levels):
                lstep = 1 << level
                first = max(lstep << 1, ((t0 >> level) + 1) << level)
                if first > tend:
                    break  # first-refresh times only grow with the level
                count = ((tend - first) >> level) + 1
                times = first + lstep * np.arange(count, dtype=np.int64)
                _, prev_first, prev_rows, prev_devs = outputs[-1]
                newer_idx = (times - prev_first) >> (level - 1)
                newer_rows = prev_rows[newer_idx]
                carry_t = first - lstep
                older_devs: Optional[np.ndarray] = None
                if carry_t > t0:
                    older_idx = (times - lstep - prev_first) >> (level - 1)
                    older_rows = prev_rows[older_idx]
                    if track:
                        assert prev_devs is not None
                        older_devs = prev_devs[older_idx]
                else:
                    width = prev_rows.shape[1]
                    older_rows = np.zeros((count, width), dtype=np.float64)
                    tail_idx = (times[1:] - lstep - prev_first) >> (level - 1)
                    older_rows[1:] = prev_rows[tail_idx]
                    carry = self._carry_node(level - 1, carry_t)
                    assert carry.coeffs is not None
                    older_rows[0, : min(carry.coeffs.size, width)] = carry.coeffs[:width]
                    if track:
                        assert prev_devs is not None and carry.deviation is not None
                        older_devs = np.empty(count, dtype=np.float64)
                        older_devs[1:] = prev_devs[tail_idx]
                        older_devs[0] = carry.deviation
                rows = batch_combine_haar(older_rows, newer_rows, self.k)
                if rows.shape[1] > (1 << (level + 1)):
                    # Mirror _fresh_right's cap: coefficients past the
                    # segment length are identically zero.
                    rows = rows[:, : 1 << (level + 1)].copy()
                devs = None
                if track:
                    assert prev_devs is not None and older_devs is not None
                    newer_devs = prev_devs[newer_idx]
                    parent_avg = rows[:, 0] / math.sqrt(1 << (level + 1))
                    child_scale = math.sqrt(1 << level)
                    devs = np.maximum(
                        older_devs + np.abs(older_rows[:, 0] / child_scale - parent_avg),
                        newer_devs + np.abs(newer_rows[:, 0] / child_scale - parent_avg),
                    )
                outputs.append((level, first, rows, devs))
        self._time = tend
        self._buffer.extend(block.tolist())
        for level, first, rows, devs in outputs:
            lv = self._levels[level]
            count = rows.shape[0]
            lstep = 1 << level
            if Role.SHIFT in lv:
                # Replaying only the tail of the shift pipeline: with count
                # in-block refreshes the final L/S are the pre-block S/R
                # (count == 1), the pre-block R plus the first fresh output
                # (count == 2), or the third/second-newest fresh outputs.
                if count == 1:
                    lv[Role.LEFT].copy_from(lv[Role.SHIFT])
                    lv[Role.SHIFT].copy_from(lv[Role.RIGHT])
                elif count == 2:
                    lv[Role.LEFT].copy_from(lv[Role.RIGHT])
                    _set_from_batch(lv[Role.SHIFT], rows, devs, 0, first, lstep)
                else:
                    _set_from_batch(lv[Role.LEFT], rows, devs, count - 3, first, lstep)
                    _set_from_batch(lv[Role.SHIFT], rows, devs, count - 2, first, lstep)
            _set_from_batch(lv[Role.RIGHT], rows, devs, count - 1, first, lstep)
        if self._check_invariants:
            contracts.check_swat(self)
        if obs.ENABLED and _t0 is not None:
            obs.counter("swat.arrivals").inc(b)
            shifted = 0
            for level in range(m, self.n_levels):
                shifted += (tend >> level) - (t0 >> level)
            if shifted:
                obs.counter("swat.levels_shifted").inc(shifted)
            obs.counter("swat.batches").inc()
            obs.histogram("swat.batch.latency").observe(time.perf_counter() - _t0)
        if self.causal is not None and _t0 is not None:
            self.causal.start_span("swat.extend", at=_t0, site="swat").finish(
                time.perf_counter(), values=b
            )

    def _carry_node(self, level: int, end_time: int) -> SwatNode:
        """Pre-block node of ``level`` whose segment ends at ``end_time``.

        The older half-segment of a block's first level-``l`` refresh
        predates the block by at most one level-``(l-1)`` shift period, so
        it is sitting in the level below's ``R`` or ``S`` node (matched by
        ``end_time``; ``L`` is checked only for defensiveness).
        """
        lv = self._levels[level]
        for role in Role.SCAN_ORDER:
            node = lv.get(role)
            if node is not None and node.is_filled and node.end_time == end_time:
                return node
        raise AssertionError(
            f"no level-{level} node ends at t={end_time}; tree state is inconsistent"
        )

    def _fresh_right(
        self, level: int, t: int
    ) -> Optional[Tuple[np.ndarray, Optional[float], Optional[np.ndarray]]]:
        """New contents of ``R_level``: ``(coeffs, deviation, positions)``.

        ``deviation`` is a certified bound on max |true - reconstruction|
        over the node's segment when ``track_deviation`` is on, else None;
        ``positions`` carries the retained flat positions for largest-k
        trees, else None.
        """
        if level == self.min_level:
            seg_len = 1 << (level + 1)
            if len(self._buffer) < seg_len:
                return None  # cold start: segment not fully observed yet
            if level == 0 and self._is_haar and self.selection == "first":
                # Hot path: level 0 refreshes on *every* arrival; avoid the
                # generic transform machinery for its two-point segment.
                newer, older = self._buffer[-1], self._buffer[-2]
                deviation = abs(newer - older) / 2.0 if self.track_deviation else None
                return leaf_coeffs(newer, older, self.k), deviation, None
            segment = np.fromiter(self._buffer, dtype=np.float64, count=seg_len)
            flat = full_decompose(segment, self.wavelet)
            deviation = None
            if self.track_deviation:
                deviation = float(np.abs(segment - segment.mean()).max())
            if self.selection == "largest":
                positions, coeffs = largest_coefficients(flat, self.k)
                return coeffs, deviation, positions
            return truncate(flat, self.k), deviation, None
        below = self._levels[level - 1]
        older, newer = below[Role.LEFT], below[Role.RIGHT]
        older_coeffs, newer_coeffs = older.coeffs, newer.coeffs
        if older_coeffs is None or newer_coeffs is None:
            return None
        if newer.end_time != t or older.end_time != t - (1 << level):
            # The children are not the two adjacent half-segments ending at
            # ``t``.  In undisturbed operation the shift cadence makes this
            # impossible once both children are filled; it arises only while
            # the tree settles after reconfigure() left lower levels stale.
            # Combining here would stamp old contents with a fresh end_time,
            # so skip the refresh until the children re-align.
            return None
        if self.selection == "largest":
            positions, coeffs = sparse_combine(
                older.positions, older_coeffs, newer.positions, newer_coeffs, self.k
            )
            return coeffs, None, positions
        if self._is_haar:
            coeffs = combine_haar(older_coeffs, newer_coeffs, self.k)
            seg_len = 1 << (level + 1)
            if coeffs.size > seg_len:
                # combine_haar zero-pads its output to k, but a segment of
                # 2^{l+1} values has only that many Haar coefficients — the
                # tail is identically zero.  Capping keeps reconstructions
                # bit-identical and the per-node footprint exactly
                # min(k, 2^{l+1}), which accounting.config_nbytes relies on.
                coeffs = coeffs[:seg_len].copy()
            deviation = None
            if self.track_deviation:
                # Sound k=1 bound: a point errs by at most its child's
                # deviation plus the child-vs-parent mean shift.
                assert older.deviation is not None and newer.deviation is not None
                parent_avg = haar_average(coeffs, 1 << (level + 1))
                deviation = max(
                    older.deviation + abs(older.average() - parent_avg),
                    newer.deviation + abs(newer.average() - parent_avg),
                )
            return coeffs, deviation, None
        joined = np.concatenate([older.reconstruct(self.wavelet), newer.reconstruct(self.wavelet)])
        return truncate(full_decompose(joined, self.wavelet), self.k), None, None

    # -------------------------------------------------------- reconfiguration

    def reconfigure(
        self, *, k: Optional[int] = None, min_level: Optional[int] = None
    ) -> bool:
        """Resize the summary in place: the Section 2.5/2.6 knobs, live.

        ``k`` truncates (or allows future growth of) every node's coefficient
        vector; ``min_level`` switches between the full and reduced-level
        trees.  Returns True when anything actually changed.  Intended to be
        called at phase boundaries by the resource governor
        (:mod:`repro.control`), but safe at any arrival.

        Semantics:

        * Lowering ``k`` truncates each filled node to its first ``k``
          coefficients.  First-``k`` prefixes are exact, so the resulting
          state is *identical* to a tree that ran with the smaller ``k`` all
          along; no settling is needed, and answers shrink in accuracy
          exactly as Section 2.6 predicts.
        * Raising ``k`` changes future refreshes only; existing nodes keep
          their shorter vectors (always a legal state — combine zero-pads)
          and grow as the shift pipeline refreshes them.
        * Changing ``min_level`` empties the levels below the new coarsest
          level (raising) or starts maintaining them from scratch (lowering)
          and re-seeds the raw ring buffer from the retained tail.  The tree
          then *settles*: ingestion takes the scalar path, upper levels skip
          refreshes whose children are still stale (see
          :meth:`_fresh_right`), queries may extrapolate across the
          disturbed levels, and :func:`repro.contracts.check_swat` excuses
          the refresh cadence — until every maintained node is back on
          cadence (a few window-halves of arrivals at most).

        Bumps :attr:`epoch` on any change so compiled query plans and warmth
        gates can never serve the resized tree from stale caches.
        """
        changed = False
        if k is not None:
            new_k = int(k)
            if new_k < 1:
                raise ValueError("k must be >= 1")
            if self.track_deviation and new_k != 1:
                raise ValueError(
                    "deviation tracking is defined for k=1 trees; cannot "
                    f"reconfigure to k={new_k}"
                )
            if new_k != self.k:
                if new_k < self.k and self.selection == "largest":
                    raise ValueError(
                        "cannot truncate a largest-k tree: retained "
                        "coefficients are not prefix-nested"
                    )
                if new_k < self.k:
                    for lv in self._levels:
                        for node in lv.values():
                            coeffs = node.coeffs
                            if coeffs is not None and coeffs.size > new_k:
                                node.set_contents(
                                    coeffs[:new_k].copy(),
                                    node.end_time,
                                    node.deviation,
                                    None,
                                )
                self.k = new_k
                changed = True
        if min_level is not None:
            new_m = int(min_level)
            if not 0 <= new_m < self.n_levels:
                raise ValueError(
                    f"min_level must be in [0, {self.n_levels - 1}], got {new_m}"
                )
            if new_m != self.min_level:
                old_m = self.min_level
                if new_m > old_m:
                    # The abandoned fine levels are no longer maintained;
                    # empty them so nothing stale can ever resurface if a
                    # later reconfigure lowers min_level again.
                    for level in range(old_m, new_m):
                        self._levels[level] = {
                            role: SwatNode(level, role) for role in Role.SCAN_ORDER
                        }
                self.min_level = new_m
                self.use_raw_leaves = self._raw_leaves_requested and new_m == 0
                # Re-seed the ring buffer feeding the new coarsest level from
                # the retained raw tail (deque keeps the newest values).
                self._buffer = deque(self._buffer, maxlen=1 << (new_m + 1))
                if self._time > 0:
                    self._settling = True
                changed = True
        if changed:
            self.epoch += 1
            self._nbytes_settled_at = self._time + 2 * self.window_size
            if self._check_invariants:
                contracts.check_swat(self)
        return changed

    def _is_on_cadence(self) -> bool:
        """True when every maintained node is filled on the Figure 3(a) cadence.

        This is the settling-exit test after a :meth:`reconfigure`: a pure
        function of the tree state, so batch and scalar ingestion agree on
        when the flag clears.  It demands the full steady state (every
        maintained node filled at its exact refresh tick), which a fresh or
        disturbed tree reaches within ``2N`` arrivals.
        """
        if len(self._buffer) < (1 << (self.min_level + 1)):
            # An under-seeded ring buffer cannot sustain the coarsest level's
            # next refresh even if every node currently sits on cadence.
            return False
        t = self._time
        for level in range(self.min_level, self.n_levels):
            period = 1 << level
            refresh_tick = t - (t % period)
            for role, node in self._levels[level].items():
                lag = {"R": 0, "S": 1, "L": 2}[role]
                expected_end = refresh_tick - lag * period
                if node.coeffs is None or node.end_time != expected_end:
                    return False
        return True

    # ---------------------------------------------------------------- queries

    def cover(self, indices: Iterable[int]) -> Cover:
        """Cover set ``V`` for the given window indices (Figure 3(b), first loop)."""
        wanted = list(indices)
        bad = [i for i in wanted if not 0 <= i < self.size]
        if bad:
            raise IndexError(
                f"window indices {bad} out of range [0, {self.size - 1}] "
                f"(stream has seen {self._time} values)"
            )
        return build_cover(
            self.nodes(),
            wanted,
            self._time,
            # Reduced trees always extrapolate below min_level; a settling
            # tree additionally extrapolates across levels reconfigure()
            # emptied until the shift pipeline refills them.
            allow_extrapolation=self.min_level > 0 or self._settling,
        )

    def estimates(self, indices: Sequence[int]) -> np.ndarray:
        """Approximate values for the given window indices.

        Indices 0 and 1 are served exactly from the raw leaves ``R_{-1}`` and
        ``L_{-1}`` when ``use_raw_leaves`` is on; everything else comes from
        the cover set's inverse transforms.
        """
        values, __, __ = self._estimate(list(indices))
        return values

    def _estimate(self, indices: List[int]) -> Tuple[np.ndarray, List[SwatNode], int]:
        """Estimates plus the cover diagnostics for the given indices."""
        idx = np.asarray(indices, dtype=np.int64).reshape(-1)
        bad_mask = (idx < 0) | (idx >= self.size)
        if bad_mask.any():
            bad = [int(i) for i in idx[bad_mask]]
            raise IndexError(
                f"window indices {bad} out of range [0, {self.size - 1}] "
                f"(stream has seen {self._time} values)"
            )
        values = np.empty(idx.size, dtype=np.float64)
        n_raw = min(len(self._buffer), 2, self.size) if self.use_raw_leaves else 0
        raw_mask = idx < n_raw
        if n_raw:
            # Window indices 0/1 are the raw leaves d_0 / d_1 of Figure 3(a).
            d0 = self._buffer[-1]
            d1 = self._buffer[-2] if n_raw > 1 else 0.0
            values[raw_mask] = np.where(idx[raw_mask] == 0, d0, d1)
        rest_mask = ~raw_mask
        nodes_used: List[SwatNode] = []
        n_extrapolated = 0
        if bool(rest_mask.any()):
            remaining = [int(i) for i in idx[rest_mask]]
            cover = self.cover(remaining)
            values[rest_mask] = self._extract(cover, idx[rest_mask])
            nodes_used = cover.nodes
            n_extrapolated = len(cover.extrapolated)
        return values, nodes_used, n_extrapolated

    def _raw_leaf_values(self, indices: Sequence[int]) -> Dict[int, float]:
        """Exact values for indices covered by the raw leaves (d_0, d_1)."""
        if not self.use_raw_leaves:
            return {}
        out: Dict[int, float] = {}
        n_raw = min(len(self._buffer), 2, self.size)
        for i in indices:
            if 0 <= i < n_raw:
                out[i] = self._buffer[-1 - i]
        return out

    def _extract(self, cover: Cover, indices: np.ndarray) -> np.ndarray:
        """Per-index approximations from the cover, aligned with ``indices``.

        Each node's assigned indices map to segment positions with one
        vectorized expression (the segment is oldest-first, so window index
        ``i`` sits at ``segment_length - 1 - (i - lo)``); extrapolated
        indices clamp to the nearest segment end.  Results land in their
        output slots via a searchsorted scatter — no per-index dict work.
        """
        idx = np.asarray(indices, dtype=np.int64)
        uniq, inv = np.unique(idx, return_inverse=True)
        out = np.empty(uniq.size, dtype=np.float64)
        now = self._time
        extrapolated = cover.extrapolated
        for node, assigned in cover.assignments.items():
            signal = node.reconstruct(self.wavelet)
            lo, _hi = node.relative_segment(now)
            a_idx = np.asarray(assigned, dtype=np.int64)
            pos = node.segment_length - 1 - (a_idx - lo)
            if extrapolated:
                ex = np.isin(a_idx, np.asarray(extrapolated, dtype=np.int64))
                # Clamp to the nearest end of the node's segment.
                pos = np.where(ex, np.where(a_idx < lo, node.segment_length - 1, 0), pos)
            out[np.searchsorted(uniq, a_idx)] = signal[pos]
        return out[inv]

    def answer(self, query: InnerProductQuery) -> QueryAnswer:
        """Answer an inner-product (or point) query approximately.

        With ``track_deviation`` on, the result carries a certified
        ``error_bound``; :meth:`can_answer` compares it to the query's
        precision requirement.
        """
        _t0 = (
            time.perf_counter()
            if obs.ENABLED or self.causal is not None
            else None
        )
        est, nodes_used, n_extrapolated = self._estimate(list(query.indices))
        value = float(np.dot(np.asarray(query.weights, dtype=np.float64), est))
        bound = None
        if self.track_deviation:
            bound = self._certified_bound(query, n_extrapolated)
        if obs.ENABLED and _t0 is not None:
            obs.counter("swat.queries").inc()
            obs.histogram("swat.query.cover_size", buckets=obs.COUNT_BUCKETS).observe(
                len(nodes_used)
            )
            if n_extrapolated:
                obs.counter("swat.extrapolations").inc(n_extrapolated)
            obs.histogram("swat.query.latency").observe(time.perf_counter() - _t0)
        if self.causal is not None and _t0 is not None:
            self.causal.start_span("swat.answer", at=_t0, site="swat").finish(
                time.perf_counter(), cover=len(nodes_used)
            )
        return QueryAnswer(value, est, nodes_used, n_extrapolated, bound)

    def _certified_bound(self, query: InnerProductQuery, n_extrapolated: int) -> float:
        """Sum of per-index deviations weighted by the query (inf if any
        index had to be extrapolated — those carry no certificate)."""
        if n_extrapolated:
            return float("inf")
        weights = dict(zip(query.indices, query.weights))
        raw = self._raw_leaf_values(list(query.indices))
        remaining = [i for i in query.indices if i not in raw]
        bound = 0.0
        if remaining:
            cover = self.cover(remaining)
            for node, assigned in cover.assignments.items():
                if node.deviation is None:
                    return float("inf")
                for i in assigned:
                    bound += weights[i] * node.deviation
        return bound

    def can_answer(self, query: InnerProductQuery) -> bool:
        """True when the certified error bound meets the query precision."""
        if not self.track_deviation:
            raise ValueError("construct the tree with track_deviation=True")
        bound = self.answer(query).error_bound
        return bound is not None and bound <= query.precision

    def point_estimate(self, index: int) -> float:
        """Approximate value of the stream at window index ``index``."""
        return float(self.estimates([index])[0])

    def answer_range(self, query: RangeQuery) -> List[Tuple[int, float]]:
        """Answer a range query (Section 2.4).

        Returns ``(index, approx_value)`` pairs for window indices in
        ``[t_start, t_end]`` whose approximation falls inside the query's
        value band.  The approximation tree induces a step function in
        time-value space; this returns the points on the intersection of that
        step function with the query rectangle.
        """
        hi = min(query.t_end, self.size - 1)
        if hi < query.t_start:
            return []
        indices = list(range(query.t_start, hi + 1))
        est = self.estimates(indices)
        return [(i, float(v)) for i, v in zip(indices, est) if query.matches(v)]

    def reconstruct_window(self) -> np.ndarray:
        """Approximation of the whole current window, newest-first."""
        if self.size == 0:
            return np.empty(0, dtype=np.float64)
        return self.estimates(list(range(self.size)))

    # ----------------------------------------------------------- persistence

    def to_state(self) -> dict:
        """Checkpoint the summary as a JSON-serializable dict.

        Captures everything :meth:`from_state` needs to resume the stream
        mid-flight: configuration, the arrival clock, the raw ring buffer,
        and each filled node's coefficients and end time.  Every float is
        finiteness-gated through :func:`~repro.core.errors.require_finite`
        on the way out: a ``NaN`` or ``Infinity`` that slipped into a node
        would otherwise serialize as the non-standard ``NaN``/``Infinity``
        JSON tokens and poison strict consumers, so the checkpoint fails
        loudly here instead (``json.dumps(state, allow_nan=False)`` is then
        always safe).
        """
        nodes: List[Dict[str, object]] = []
        for level, lv in enumerate(self._levels):
            for role, node in lv.items():
                coeffs = node.coeffs
                if coeffs is not None:
                    require_finite(coeffs, f"node {role}{level} coefficients")
                    if node.deviation is not None:
                        require_finite(
                            node.deviation, f"node {role}{level} deviation"
                        )
                    nodes.append(
                        {
                            "level": level,
                            "role": role,
                            "end_time": node.end_time,
                            "coeffs": [float(c) for c in coeffs],
                            "deviation": node.deviation,
                            "positions": (
                                None
                                if node.positions is None
                                else [int(p) for p in node.positions]
                            ),
                        }
                    )
        buffer = [float(v) for v in self._buffer]
        if buffer:
            require_finite(np.asarray(buffer, dtype=np.float64), "ring buffer")
        return {
            "window_size": self.window_size,
            "k": self.k,
            "wavelet": self.wavelet,
            "min_level": self.min_level,
            "use_raw_leaves": self.use_raw_leaves,
            "track_deviation": self.track_deviation,
            "selection": self.selection,
            "time": self._time,
            "buffer": buffer,
            "nodes": nodes,
        }

    @classmethod
    def from_state(
        cls, state: dict, *, check_invariants: Optional[bool] = None
    ) -> "Swat":
        """Restore a summary checkpointed by :meth:`to_state`.

        The state is validated before it is trusted: node levels must fall in
        the maintained range, coefficient vectors may not exceed ``k``,
        ``end_time`` may not sit in the future of the restored arrival clock,
        and every float must be finite.  When invariant checking is enabled
        (explicit argument or ``REPRO_CHECK_INVARIANTS``) the full
        :func:`repro.contracts.check_swat` contract runs on the result.  Any
        violation raises :exc:`ValueError` — a corrupt checkpoint must fail
        the restore, not quietly produce wrong answers later.
        """
        try:
            tree = cls(
                state["window_size"],
                k=state["k"],
                wavelet=state["wavelet"],
                min_level=state["min_level"],
                use_raw_leaves=state["use_raw_leaves"],
                track_deviation=state.get("track_deviation", False),
                selection=state.get("selection", "first"),
                check_invariants=check_invariants,
            )
            now = int(state["time"])
            if now < 0:
                raise _malformed(f"negative arrival clock {now}")
            tree._time = now
            buffer = [float(v) for v in state["buffer"]]
            maxlen = tree._buffer.maxlen
            assert maxlen is not None  # always set in __init__
            if len(buffer) > maxlen:
                raise _malformed(
                    f"buffer holds {len(buffer)} values, ring capacity is {maxlen}"
                )
            if buffer and not bool(
                np.isfinite(np.asarray(buffer, dtype=np.float64)).all()
            ):
                raise _malformed("ring buffer contains non-finite values")
            tree._buffer.extend(buffer)
            for entry in state["nodes"]:
                level = int(entry["level"])
                role = entry["role"]
                if not tree.min_level <= level < tree.n_levels:
                    raise _malformed(
                        f"node level {level} outside the maintained range "
                        f"[{tree.min_level}, {tree.n_levels - 1}]"
                    )
                lv = tree._levels[level]
                if role not in lv:
                    raise _malformed(f"level {level} keeps no role {role!r}")
                coeffs = np.asarray(entry["coeffs"], dtype=np.float64)
                if coeffs.ndim != 1 or not 1 <= coeffs.size <= tree.k:
                    raise _malformed(
                        f"node {role}{level} carries {coeffs.size} coefficients "
                        f"(k={tree.k})"
                    )
                if not bool(np.isfinite(coeffs).all()):
                    raise _malformed(
                        f"node {role}{level} coefficients are non-finite"
                    )
                end_time = int(entry["end_time"])
                if end_time > now:
                    raise _malformed(
                        f"node {role}{level} ends at t={end_time}, in the "
                        f"future of the arrival clock t={now}"
                    )
                deviation = entry.get("deviation")
                if deviation is not None:
                    deviation = float(deviation)
                    if not math.isfinite(deviation):
                        raise _malformed(
                            f"node {role}{level} deviation is non-finite"
                        )
                positions = entry.get("positions")
                pos_arr: Optional[np.ndarray] = None
                if positions is not None:
                    pos_arr = np.asarray(positions, dtype=np.int64)
                    if pos_arr.shape != coeffs.shape:
                        raise _malformed(
                            f"node {role}{level} has {pos_arr.size} positions "
                            f"for {coeffs.size} coefficients"
                        )
                lv[role].set_contents(coeffs, end_time, deviation, pos_arr)
        except (KeyError, IndexError, TypeError) as exc:
            raise ValueError(f"malformed Swat state: {exc}") from exc
        if tree._check_invariants:
            try:
                contracts.check_swat(tree)
            except contracts.InvariantViolation as exc:
                raise _malformed(str(exc)) from exc
        return tree

    def restore_state(self, state: dict) -> None:
        """Swap this tree's contents for a checkpointed state, in place.

        Equivalent to :meth:`from_state` — including all of its validation —
        but preserves object identity so live references (replication sites,
        a :class:`~repro.core.engine.QueryEngine`) follow the restore.  Bumps
        :attr:`epoch`; caches keyed on the pre-restore node versions must
        treat the whole tree as new, because the fresh nodes restart their
        version counters.  The checkpoint must describe the same
        configuration this tree was built with.
        """
        tree = Swat.from_state(state, check_invariants=self._check_invariants)
        for attr in (
            "window_size",
            "k",
            "wavelet",
            "min_level",
            "use_raw_leaves",
            "track_deviation",
            "selection",
        ):
            if getattr(tree, attr) != getattr(self, attr):
                raise _malformed(
                    f"{attr}={getattr(tree, attr)!r} does not match the live "
                    f"tree's {getattr(self, attr)!r}"
                )
        self._time = tree._time
        self._buffer = tree._buffer
        self._levels = tree._levels
        self.epoch += 1

    def __repr__(self) -> str:
        return (
            f"Swat(N={self.window_size}, k={self.k}, wavelet={self.wavelet!r}, "
            f"levels={self.min_level}..{self.n_levels - 1}, t={self._time})"
        )


def _malformed(detail: str) -> ValueError:
    """A checkpoint-state validation failure (uniform, test-matched prefix)."""
    return ValueError(f"malformed Swat state: {detail}")


def _trailing_zeros(t: int) -> int:
    """Number of trailing zero bits of ``t >= 1`` (the update ruler sequence)."""
    return (t & -t).bit_length() - 1


def _set_from_batch(
    node: SwatNode,
    rows: np.ndarray,
    devs: Optional[np.ndarray],
    i: int,
    first: int,
    step: int,
) -> None:
    """Materialize batch-cascade output row ``i`` into ``node``."""
    node.set_contents(
        rows[i].copy(),
        first + i * step,
        None if devs is None else float(devs[i]),
        None,
    )
