"""SWAT core: the approximation tree, query model, and error analysis."""

from .continuous import ContinuousQueryEngine, Subscription
from .coverage import Cover, CoverageError, build_cover
from .engine import QueryEngine
from .errors import (
    drift_segment_errors,
    exponential_level_bound,
    exponential_query_bound,
    linear_level_bound,
    linear_query_bound,
)
from .growing import GrowingSwat
from .multi import StreamEnsemble
from .node import Role, SwatNode
from .plan import PlanStep, QueryPlan, compile_plan, phase_of
from .queries import (
    InnerProductQuery,
    RangeQuery,
    exponential_query,
    linear_query,
    point_query,
)
from .swat import QueryAnswer, Swat

__all__ = [
    "Swat",
    "QueryAnswer",
    "GrowingSwat",
    "ContinuousQueryEngine",
    "Subscription",
    "QueryEngine",
    "QueryPlan",
    "PlanStep",
    "compile_plan",
    "phase_of",
    "StreamEnsemble",
    "SwatNode",
    "Role",
    "Cover",
    "CoverageError",
    "build_cover",
    "InnerProductQuery",
    "RangeQuery",
    "point_query",
    "exponential_query",
    "linear_query",
    "exponential_level_bound",
    "exponential_query_bound",
    "linear_level_bound",
    "linear_query_bound",
    "drift_segment_errors",
]
