"""Query model of Section 2.1: point, range, and inner-product queries.

A data stream is ``..., d_2, d_1, d_0`` with ``d_0`` the most recent value;
queries address *window indices* where index 0 is the newest point.

An inner-product query is a triple ``(I, W, delta)``: index vector, weight
vector, and the precision within which ``I . W`` must be answered.  The two
special shapes the paper analyses:

* **exponential**: weights decay geometrically with age, e.g. ``[8, 4, 2, 1]``
  over indices ``[0, 1, 2, 3]``;
* **linear**: weights decay linearly, e.g. ``[4, 3, 2, 1]``.

Point queries are inner-product queries with a single index and weight 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "InnerProductQuery",
    "point_query",
    "exponential_query",
    "linear_query",
    "RangeQuery",
]


@dataclass(frozen=True)
class InnerProductQuery:
    """An inner-product query ``(I, W, delta)`` over window indices.

    Attributes
    ----------
    indices:
        Window indices of interest (0 = most recent).  Need not be
        consecutive or sorted, but must be distinct.
    weights:
        One weight per index.
    precision:
        The ``delta`` tolerance: an answer ``a`` is acceptable when
        ``sum_i W[i] * |d_{I[i]} - a_{I[i]}| <= delta`` (Section 2.1).
    """

    indices: Tuple[int, ...]
    weights: Tuple[float, ...]
    precision: float = float("inf")

    def __post_init__(self) -> None:
        if len(self.indices) != len(self.weights):
            raise ValueError(
                f"index/weight length mismatch: {len(self.indices)} vs {len(self.weights)}"
            )
        if len(self.indices) == 0:
            raise ValueError("query must address at least one index")
        if len(set(self.indices)) != len(self.indices):
            raise ValueError("query indices must be distinct")
        if any(i < 0 for i in self.indices):
            raise ValueError("window indices are non-negative")
        if self.precision < 0:
            raise ValueError("precision must be non-negative")

    @property
    def length(self) -> int:
        """Number of addressed data points (the paper's ``M``)."""
        return len(self.indices)

    @property
    def max_index(self) -> int:
        return max(self.indices)

    def evaluate(self, values: Sequence[float]) -> float:
        """Exact inner product against per-index values.

        ``values`` is indexed by *window index* (``values[i]`` is ``d_i``),
        so callers pass the window newest-first.
        """
        idx = np.asarray(self.indices)
        w = np.asarray(self.weights, dtype=np.float64)
        vals = np.asarray(values, dtype=np.float64)
        if idx.max() >= vals.size:
            raise IndexError(
                f"query addresses index {int(idx.max())} but only {vals.size} values given"
            )
        return float(np.dot(w, vals[idx]))

    def weighted_error(self, true_values: Sequence[float], approx_values: Sequence[float]) -> float:
        """The paper's error measure ``sum_i W[i] * |d_{I[i]} - a_{I[i]}|``."""
        idx = np.asarray(self.indices)
        w = np.asarray(self.weights, dtype=np.float64)
        t = np.asarray(true_values, dtype=np.float64)[idx]
        a = np.asarray(approx_values, dtype=np.float64)[idx]
        return float(np.dot(w, np.abs(t - a)))


def point_query(index: int, precision: float = float("inf")) -> InnerProductQuery:
    """A point query ``([i], [1], delta)``."""
    return InnerProductQuery((int(index),), (1.0,), precision)


def exponential_query(
    length: int, start: int = 0, ratio: float = 2.0, precision: float = float("inf")
) -> InnerProductQuery:
    """Exponential inner-product query over ``length`` consecutive indices.

    Weights are ``[1, 1/ratio, 1/ratio^2, ...]`` starting at window index
    ``start`` — the most recent addressed value carries the largest weight,
    matching the paper's biased query model.
    """
    if length < 1:
        raise ValueError("length must be >= 1")
    if ratio <= 1.0:
        raise ValueError("ratio must exceed 1 for exponentially decreasing weights")
    indices = tuple(range(start, start + length))
    weights = tuple(ratio ** (-i) for i in range(length))
    return InnerProductQuery(indices, weights, precision)


def linear_query(
    length: int, start: int = 0, precision: float = float("inf")
) -> InnerProductQuery:
    """Linear inner-product query: weights ``[M/M, (M-1)/M, ..., 1/M]``."""
    if length < 1:
        raise ValueError("length must be >= 1")
    indices = tuple(range(start, start + length))
    weights = tuple((length - i) / length for i in range(length))
    return InnerProductQuery(indices, weights, precision)


@dataclass(frozen=True)
class RangeQuery:
    """A range query (Section 2.4): rectangle in time-value space.

    Asks for all window indices ``t_start <= i <= t_end`` whose value lies in
    ``[value - radius, value + radius]``.
    """

    value: float
    radius: float
    t_start: int
    t_end: int

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise ValueError("radius must be non-negative")
        if not 0 <= self.t_start <= self.t_end:
            raise ValueError("need 0 <= t_start <= t_end")

    @property
    def low(self) -> float:
        return self.value - self.radius

    @property
    def high(self) -> float:
        return self.value + self.radius

    def matches(self, v: float) -> bool:
        return self.low <= v <= self.high
