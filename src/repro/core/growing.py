"""Whole-stream SWAT: the unbounded variant of Section 2.3.

"If the entire data stream (and not just the last N values) is of interest,
then the number of levels of the approximation tree will grow
logarithmically with the size of the stream."

:class:`GrowingSwat` implements exactly that: the same shift pipeline and
k-coefficient Haar nodes as :class:`repro.core.swat.Swat`, but a new level is
appended whenever the stream doubles, so any prefix of the stream remains
queryable forever in ``O(k log t)`` space.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..wavelets.haar import combine_haar, leaf_coeffs
from .coverage import build_cover
from .node import Role, SwatNode
from .queries import InnerProductQuery

__all__ = ["GrowingSwat"]


class GrowingSwat:
    """SWAT over the entire stream; levels grow with ``log2(t)``.

    Every level keeps the full Left / Shift / Right triple (there is no
    window boundary to make older nodes useless, so the paper's top-level
    pruning does not apply).  Window indices address the whole stream:
    index 0 is the newest value, index ``time - 1`` the very first.
    """

    def __init__(self, k: int = 1) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = int(k)
        self._time = 0
        self._last_two: List[float] = []
        self._levels: List[Dict[str, SwatNode]] = []

    # ------------------------------------------------------------------ state

    @property
    def time(self) -> int:
        """Total number of arrivals observed."""
        return self._time

    @property
    def size(self) -> int:
        """Queryable indices: the whole stream."""
        return self._time

    @property
    def n_levels(self) -> int:
        return len(self._levels)

    @property
    def memory_coefficients(self) -> int:
        return sum(
            node.coeffs.size
            for lv in self._levels
            for node in lv.values()
            if node.coeffs is not None
        )

    def node(self, level: int, role: str) -> SwatNode:
        return self._levels[level][role]

    def nodes(self) -> List[SwatNode]:
        """All nodes in query-scan order (level ascending, R, S, L)."""
        out: List[SwatNode] = []
        for lv in self._levels:
            out.extend(lv[role] for role in Role.SCAN_ORDER)
        return out

    # ---------------------------------------------------------------- updates

    def update(self, value: float) -> None:
        """Ingest one value; grows a level whenever the stream doubles."""
        self._time += 1
        t = self._time
        self._last_two.append(float(value))
        if len(self._last_two) > 2:
            self._last_two.pop(0)
        # Level l needs 2^{l+1} points; append levels as the stream doubles.
        while (1 << (len(self._levels) + 1)) <= t:
            level = len(self._levels)
            self._levels.append(
                {role: SwatNode(level, role) for role in Role.SCAN_ORDER}
            )
        max_level = min(_trailing_zeros(t), len(self._levels) - 1)
        for level in range(max_level + 1):
            lv = self._levels[level]
            lv[Role.LEFT].copy_from(lv[Role.SHIFT])
            lv[Role.SHIFT].copy_from(lv[Role.RIGHT])
            coeffs = self._fresh_right(level)
            if coeffs is not None:
                lv[Role.RIGHT].set_contents(coeffs, t)

    def extend(self, values: Iterable[float]) -> None:
        for v in values:
            self.update(v)

    def _fresh_right(self, level: int) -> Optional[np.ndarray]:
        if level == 0:
            if len(self._last_two) < 2:
                return None
            return leaf_coeffs(self._last_two[-1], self._last_two[-2], self.k)
        below = self._levels[level - 1]
        older_coeffs = below[Role.LEFT].coeffs
        newer_coeffs = below[Role.RIGHT].coeffs
        if older_coeffs is None or newer_coeffs is None:
            return None
        return combine_haar(older_coeffs, newer_coeffs, self.k)

    # ---------------------------------------------------------------- queries

    def estimates(self, indices: Sequence[int]) -> np.ndarray:
        """Approximate stream values at the given indices (0 = newest)."""
        indices = list(indices)
        bad = [i for i in indices if not 0 <= i < self._time]
        if bad:
            raise IndexError(f"indices {bad} out of range [0, {self._time - 1}]")
        by_index: Dict[int, float] = {}
        recent = min(len(self._last_two), 2)
        for i in indices:
            if i < recent:
                by_index[i] = self._last_two[-1 - i]
        remaining = [i for i in indices if i not in by_index]
        if remaining:
            cover = build_cover(self.nodes(), remaining, self._time)
            for node, assigned in cover.assignments.items():
                signal = node.reconstruct("haar")
                for i in assigned:
                    by_index[i] = float(signal[node.position_of(i, self._time)])
        return np.array([by_index[i] for i in indices], dtype=np.float64)

    def point_estimate(self, index: int) -> float:
        return float(self.estimates([index])[0])

    def answer(self, query: InnerProductQuery) -> float:
        est = self.estimates(list(query.indices))
        return float(np.dot(np.asarray(query.weights, dtype=np.float64), est))

    def __repr__(self) -> str:
        return f"GrowingSwat(k={self.k}, levels={self.n_levels}, t={self._time})"


def _trailing_zeros(t: int) -> int:
    return (t & -t).bit_length() - 1
