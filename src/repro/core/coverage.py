"""Greedy node-cover construction for SWAT queries (Figure 3(b)).

The query handler scans tree nodes from the lowest level upward — and within
a level in the order ``R -> S -> L`` — adding a node to the cover set ``V``
whenever it covers a query index not yet covered.  Each index is then
answered from the *first* (finest) node that covered it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from .node import SwatNode

__all__ = ["CoverageError", "Cover", "build_cover"]


class CoverageError(LookupError):
    """Raised when a query index cannot be covered by any tree node."""


class Cover:
    """Result of the cover construction.

    Attributes
    ----------
    assignments:
        Maps each selected node to the list of query indices it answers.
    extrapolated:
        Indices that no node's segment contained and that were clamped to the
        nearest segment boundary of a reduced-level tree (see
        :meth:`repro.core.swat.Swat.cover`); empty for a full tree.
    """

    def __init__(self) -> None:
        self.assignments: Dict[SwatNode, List[int]] = {}
        self.extrapolated: List[int] = []

    @property
    def nodes(self) -> List[SwatNode]:
        return list(self.assignments)

    def add(self, node: SwatNode, index: int) -> None:
        self.assignments.setdefault(node, []).append(index)


def build_cover(
    nodes: Sequence[SwatNode],
    indices: Iterable[int],
    now: int,
    allow_extrapolation: bool = False,
) -> Cover:
    """Build the cover set ``V`` for ``indices`` over ``nodes``.

    Parameters
    ----------
    nodes:
        Tree nodes already in scan order (level ascending, ``R, S, L`` within
        a level).
    indices:
        Window indices the query addresses.
    now:
        Current absolute arrival count (defines the index <-> time mapping).
    allow_extrapolation:
        If True, indices not inside any node segment are assigned to the node
        whose segment boundary is nearest (finest level wins ties) and
        recorded in :attr:`Cover.extrapolated`.  This is how a reduced-level
        tree (Section 2.5) answers queries about values more recent than its
        coarsest maintained resolution.

    Raises
    ------
    CoverageError
        If some index is uncovered and extrapolation is disabled.
    """
    wanted = np.unique(np.fromiter((int(i) for i in indices), dtype=np.int64))
    cover = Cover()
    # A node's segment is a contiguous index range, so against the sorted
    # index array each scan step is two binary searches plus a mask slice
    # instead of a per-index Python set walk.
    open_mask = np.ones(wanted.size, dtype=bool)
    n_open = int(wanted.size)
    for node in nodes:
        if not n_open:
            break
        if not node.is_filled:
            continue
        lo, hi = node.relative_segment(now)
        a = int(np.searchsorted(wanted, lo, side="left"))
        b = int(np.searchsorted(wanted, hi, side="right"))
        if a >= b:
            continue
        hit_mask = open_mask[a:b]
        if not hit_mask.any():
            continue
        hit = wanted[a:b][hit_mask]
        cover.assignments.setdefault(node, []).extend(hit.tolist())
        open_mask[a:b] = False
        n_open -= int(hit.size)
    if n_open:
        uncovered = [int(i) for i in wanted[open_mask]]
        if not allow_extrapolation:
            raise CoverageError(
                f"window indices {uncovered} not covered by any filled node"
            )
        filled = [n for n in nodes if n.is_filled]
        if not filled:
            raise CoverageError("tree holds no approximations yet")
        for i in uncovered:
            node = min(filled, key=lambda n: _segment_distance(n, i, now))
            cover.add(node, i)
            cover.extrapolated.append(i)
    return cover


def _segment_distance(node: SwatNode, index: int, now: int) -> Tuple[int, int]:
    """Distance from ``index`` to the node's segment; ties favour finer levels."""
    lo, hi = node.relative_segment(now)
    if lo <= index <= hi:
        return (0, node.level)
    return (min(abs(index - lo), abs(index - hi)), node.level)
