"""Closed-form error bounds from Section 2.6 of the paper, plus shared
stream-input validation.

The analysis assumes a linear-drift stream (each arrival differs from the
previous one by ``eps``) and a 1-coefficient Haar tree, and bounds the
weighted error contributed by a single level-``l`` node to a query:

* exponential weights: each level contributes at most ``2 * eps``, so a
  length-``M`` query incurs ``O(eps * log M)`` total error (Equation 2);
* linear weights: level ``l`` contributes at most ``4^l * eps``, so the total
  is ``O(eps * M^2)`` (Equation 3).

These are exposed both for documentation and as oracles for the empirical
tests in ``tests/test_error_bounds.py``.

:func:`require_finite` is the one finiteness gate every ingest path shares:
scalar callers (``Swat.update``, ``PrefixStats.update``) pay a single
``math.isfinite``, while the batched ingest paths validate a whole block with
one ``np.isfinite(...).all()``.
"""

from __future__ import annotations

import math
from typing import List, Union

import numpy as np

__all__ = [
    "require_finite",
    "exponential_level_bound",
    "exponential_query_bound",
    "linear_level_bound",
    "linear_query_bound",
    "drift_segment_errors",
]


def require_finite(
    values: Union[float, int, np.ndarray], what: str = "stream values"
) -> None:
    """Raise :exc:`ValueError` unless every value is finite.

    Scalars take the ``math.isfinite`` fast path (no array allocation on the
    per-arrival hot paths); anything array-like is validated in one
    vectorized ``np.isfinite`` sweep, naming the first offender.
    """
    if isinstance(values, (float, int)):
        if math.isfinite(values):
            return
        raise ValueError(f"{what} must be finite, got {float(values)!r}")
    arr = np.asarray(values, dtype=np.float64)
    finite = np.isfinite(arr)
    if bool(finite.all()):
        return
    bad = float(arr[~finite].flat[0])
    raise ValueError(f"{what} must be finite, got {bad!r}")


def exponential_level_bound(eps: float, level: int) -> float:
    """Weighted error a level-``level`` node adds to an exponential query.

    The paper's derivation telescopes to at most ``2 * eps`` independent of
    the level (the exponentially decaying weights cancel the exponentially
    growing per-point error).
    """
    if eps < 0:
        raise ValueError("eps must be non-negative")
    if level < 0:
        raise ValueError("level must be non-negative")
    return 2.0 * eps


def exponential_query_bound(eps: float, length: int) -> float:
    """Total bound for an exponential inner-product query of ``length`` points.

    ``sum_{l=0}^{ceil(log M)} 2 eps = 2 eps (ceil(log M) + 1) = O(eps log M)``.
    """
    if length < 1:
        raise ValueError("length must be >= 1")
    top = math.ceil(math.log2(length)) if length > 1 else 0
    return 2.0 * eps * (top + 1)


def linear_level_bound(eps: float, level: int) -> float:
    """Weighted error a level-``level`` node adds to a linear query: ``4^l eps``."""
    if eps < 0:
        raise ValueError("eps must be non-negative")
    if level < 0:
        raise ValueError("level must be non-negative")
    return (4.0**level) * eps


def linear_query_bound(eps: float, length: int) -> float:
    """Total bound for a linear inner-product query: ``sum 4^l eps = O(eps M^2)``."""
    if length < 1:
        raise ValueError("length must be >= 1")
    top = math.ceil(math.log2(length)) if length > 1 else 0
    return eps * (4.0 ** (top + 1) - 1.0) / 3.0


def drift_segment_errors(eps: float, segment_length: int) -> List[float]:
    """Per-point absolute error of a 1-coefficient (average) summary under drift.

    For a segment ``d_i = d_0 + i * eps`` of ``2^{l+1}`` points summarized by
    its average ``d_0 + (len - 1) eps / 2``, point ``i`` incurs error
    ``|i - (len - 1)/2| * eps`` — the paper's worked example for ``R_2``
    (errors ``3.5 eps, 2.5 eps, 1.5 eps, 0.5 eps`` mirrored).
    """
    if segment_length < 1:
        raise ValueError("segment_length must be >= 1")
    mid = (segment_length - 1) / 2.0
    return [abs(i - mid) * eps for i in range(segment_length)]
