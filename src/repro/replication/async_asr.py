"""SWAT-ASR as communicating actors over a real message transport.

The synchronous :class:`~repro.replication.asr.SwatAsr` models messages as
counted function calls.  This module runs the *same protocol* as a set of
site actors exchanging envelopes through
:class:`repro.network.transport.Transport`: queries travel hop by hop with
request/response correlation ids, updates cascade as real deliveries, and
per-hop latency is an actual simulator delay — so response latency is
measured, not derived.

At zero latency the execution is step-for-step equivalent to the synchronous
implementation: identical message counts, identical answers, identical
directory state (asserted in ``tests/test_async_asr.py``).  With positive
latency the protocol exhibits what a real deployment would: stale reads in
flight, delayed refreshes, and measurable round-trip times.

Fault tolerance
---------------
Constructed with a :class:`~repro.network.faults.FaultPlan`, the system keeps
answering through message loss and site churn instead of raising:

* a query whose root-ward forward exhausts its retries (the parent is
  crashed or the link too lossy) is answered from the forwarding site's
  **last-known summary** with a *widened* precision interval
  (:data:`DEGRADED_WIDEN_FACTOR`) and a staleness stamp;
* a response chain lost beyond the retry cap falls back to the issuing
  client's own last-known summary (same widening + stamp) — every query gets
  an answer;
* an update that cannot reach a subscribed child marks that ``(child,
  segment)`` pair *unsynced*; the parent re-syncs the child with a fresh
  UPDATE as soon as it is reachable again (checked on every arrival and
  phase boundary);
* every UPDATE/INSERT carries the sender's monotone sequence number;
  retransmission and jitter can deliver two pushes for the same segment out
  of order, and the version guard stops the stale one from overwriting the
  fresh one (on a loss-free network the guard never fires);
* a query issued at a crashed site is served by its local stub from the
  site's last-known directory, stamped degraded.

Every answer is recorded as a :class:`QueryOutcome` carrying the value, a
covering interval, the degraded flag, and the staleness stamp, so harnesses
can verify the acceptance property: the interval covers the truth *or* the
answer is stamped stale.  The root-ward width-monotonicity contract knows
about the degraded state: unsynced pairs and crashed sites are excused
(:func:`repro.contracts.check_async_asr`).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    cast,
)

from .. import contracts
from ..control.governor import ReplicaGovernor
from ..core.queries import InnerProductQuery
from ..metrics.error import GroundTruthWindow
from ..network.directory import Directory, DirectoryRow, Segment, SegmentPlanCache
from ..network.faults import FaultPlan
from ..network.messages import MessageKind, MessageStats
from ..network.topology import Topology
from ..network.transport import Envelope, Transport
from ..obs import causal as causal_mod
from ..obs import metrics as obs
from ..obs.causal import CausalTracer, Span, TraceContext
from ..persist import (
    CheckpointCorruptError,
    CheckpointPolicy,
    CheckpointStore,
    load_checkpoint,
)
from ..simulate import shake as shake_mod
from ..simulate.events import Simulator

__all__ = ["AsyncSwatAsr", "QueryOutcome", "DEGRADED_WIDEN_FACTOR"]

#: Checkpoint kind tag for per-site protocol state.
SITE_CHECKPOINT_KIND = "asr-site"

#: Degraded answers multiply the last-known range width by this factor: the
#: summary may have drifted while the site was partitioned, so the served
#: interval hedges beyond the stored precision.
DEGRADED_WIDEN_FACTOR = 2.0

#: Internal answer payload: estimates + halfwidths + provenance metadata.
_AnswerPayload = Mapping[str, Any]
_AnswerCallback = Callable[[_AnswerPayload], None]


@dataclass(frozen=True)
class QueryOutcome:
    """One answered query, with its precision claim and provenance.

    ``interval`` is the served confidence interval ``[value - slack,
    value + slack]``; for a non-degraded answer the protocol guarantees it
    covers the true inner product at serve time.  ``degraded`` marks answers
    served from a last-known summary after a failure; those carry
    ``stale_since`` — the virtual time the serving site last synced the
    oldest queried segment (``None`` when it never has).
    """

    client: str
    value: float
    interval: Tuple[float, float]
    degraded: bool
    stale_since: Optional[float]
    served_by: str
    issued_at: float
    answered_at: float
    #: Causal trace id of the query's span tree (``None`` when causal
    #: tracing was off); resolves via ``CausalTracer.tree(trace_id)`` — for
    #: a degraded answer, the tree shows exactly which hop failed.
    trace_id: Optional[int] = None

    @property
    def latency(self) -> float:
        return self.answered_at - self.issued_at

    def covers(self, truth: float, tolerance: float = 1e-9) -> bool:
        """True when the served interval contains ``truth``."""
        return self.interval[0] - tolerance <= truth <= self.interval[1] + tolerance


class _Site:
    """One site actor: a directory plus pending-query bookkeeping."""

    def __init__(self, node_id: str, system: "AsyncSwatAsr") -> None:
        self.id = node_id
        self.system = system
        self.directory = Directory(system.window_size)
        # qid -> ("child", child_id, ctx) | ("local", callback, ctx); ctx is
        # the causal trace context the answer should continue under.
        self.pending: Dict[int, Tuple[str, object, Optional[TraceContext]]] = {}
        #: Last virtual time an UPDATE/INSERT for the segment was applied
        #: here (staleness stamps for degraded answers).
        self.last_update_at: Dict[Segment, float] = {}
        #: child -> segments whose updates could not be delivered; re-synced
        #: when the child becomes reachable again.
        self.unsynced: Dict[str, Set[Segment]] = {}
        self._resync_scheduled = False
        # Update sequencing: retransmission and jitter can reorder two pushes
        # for the same segment on the same edge, letting a stale range
        # overwrite a fresh one.  Every push carries this site's monotone
        # sequence number; the receiver rejects anything at or below the
        # version it last applied (updates flow only parent -> child, so the
        # per-sender sequence totally orders each receiver's update stream).
        self._push_seq = 0
        self._applied_version: Dict[Segment, int] = {}
        #: Virtual time through which a successful warm restore re-certified
        #: this site's pre-crash rows (``None`` until one happens).  A warm
        #: restore makes pre-crash rows exactly as trustworthy as the normal
        #: unsynced-pair window: every update the site missed while down was
        #: marked unsynced at its parent (delivery failed), so the rows it
        #: kept are valid by enclosure gating and the parent re-syncs the
        #: rest.
        self.trusted_restore_through: Optional[float] = None

    # --------------------------------------------------------------- queries

    def issue_query(
        self,
        query: InnerProductQuery,
        callback: _AnswerCallback,
        ctx: Optional[TraceContext] = None,
    ) -> Optional[int]:
        """Answer locally or forward root-ward; returns the correlation id
        of a forwarded query (``None`` when answered on the spot)."""
        payload = self._try_satisfy(query, from_child=None)
        if payload is not None:
            callback(payload)
            return None
        qid = self.system.transport.fresh_id()
        self.pending[qid] = ("local", callback, ctx)
        self._forward_query(qid, query, ctx)
        return qid

    def _forward_query(
        self, qid: int, query: InnerProductQuery, ctx: Optional[TraceContext] = None
    ) -> None:
        parent = self.system.topology.parent(self.id)
        assert parent is not None  # the root always satisfies
        self.system.transport.send(
            self.id,
            parent,
            MessageKind.QUERY,
            {"qid": qid, "query": query},
            on_failed=lambda env: self._on_forward_failed(qid, query),
            trace=ctx,
        )

    def _try_satisfy(
        self, query: InnerProductQuery, from_child: Optional[str]
    ) -> Optional[_AnswerPayload]:
        """Figure 8(a) query branch: whole-query precision test at this site."""
        by_segment = self.system.group_by_segment(query)
        if shake_mod.DETECTOR is not None:
            for seg in by_segment:
                shake_mod.note_read(f"site:{self.id}", "directory", seg)
        weights = dict(zip(query.indices, query.weights))
        if self.id == self.system.topology.root:
            for seg in by_segment:
                self._count_read(self.directory.row(seg), from_child)
            estimates = {i: self.system.window[i] for i in query.indices}
            return {
                "estimates": estimates,
                "halfwidths": {i: 0.0 for i in query.indices},
                "served_by": self.id,
            }
        offered = 0.0
        for seg, indices in by_segment.items():
            offered += sum(weights[i] for i in indices) * self._trusted_width(seg)
        if offered > query.precision:
            return None
        estimates = {}
        halfwidths: Dict[int, float] = {}
        for seg, indices in by_segment.items():
            row = self.directory.row(seg)
            self._count_read(row, from_child)
            for idx in indices:
                estimates[idx] = row.midpoint
                halfwidths[idx] = row.width / 2.0
        return {"estimates": estimates, "halfwidths": halfwidths, "served_by": self.id}

    def _trusted_width(self, seg: Segment) -> float:
        """The precision this site can honestly offer for ``seg``: the cached
        range width, or infinity for rows it must not trust — uncached rows
        and rows last synced before the site's own most recent crash recovery
        (a restarted process knows it restarted; anything older than the
        restart may have missed updates, so the query forwards root-ward for
        a fresh answer instead)."""
        row = self.directory.row(seg)
        if not row.is_cached or self._suspect(seg):
            return float("inf")
        return row.width

    def _suspect(self, seg: Segment) -> bool:
        """True when the row was last synced before this site's most recent
        recovery from a crash window — unless a warm restore from a valid
        checkpoint covered that recovery, in which case the restored rows
        carry the full trust of checkpoint + WAL replay."""
        plan = self.system.transport.faults
        if plan is None:
            return False
        recovered_at = plan.last_recovery_before(self.id, self.system.sim.now)
        if recovered_at is None:
            return False
        if (
            self.trusted_restore_through is not None
            and self.trusted_restore_through >= recovered_at
        ):
            return False
        seen_at = self.last_update_at.get(seg)
        return seen_at is None or seen_at < recovered_at

    def degraded_payload(self, query: InnerProductQuery) -> _AnswerPayload:
        """Last-known answer with widened halfwidths and a staleness stamp.

        Served when the root-ward path is unreachable: cached rows answer
        with their midpoint and ``DEGRADED_WIDEN_FACTOR``-widened width,
        uncached rows answer 0 with an infinite halfwidth.  The stamp is the
        oldest last-sync time over the queried segments (``None`` when the
        site has never synced one of them).
        """
        by_segment = self.system.group_by_segment(query)
        estimates: Dict[int, float] = {}
        halfwidths: Dict[int, float] = {}
        stale_since: Optional[float] = None
        never_synced = False
        for seg, indices in by_segment.items():
            row = self.directory.row(seg)
            if row.is_cached:
                mid = row.midpoint
                half = row.width * DEGRADED_WIDEN_FACTOR / 2.0
            else:
                mid, half = 0.0, float("inf")
            for idx in indices:
                estimates[idx] = mid
                halfwidths[idx] = half
            seen_at = self.last_update_at.get(seg)
            if seen_at is None:
                never_synced = True
            elif stale_since is None or seen_at < stale_since:
                stale_since = seen_at
        return {
            "estimates": estimates,
            "halfwidths": halfwidths,
            "served_by": self.id,
            "degraded": True,
            "stale_since": None if never_synced else stale_since,
        }

    @staticmethod
    def _count_read(row: DirectoryRow, from_child: Optional[str]) -> None:
        if from_child is None:
            row.local_reads += 1
        else:
            row.note_read(from_child)

    # -------------------------------------------------------------- messages

    def handle(self, env: Envelope) -> None:
        if env.kind == MessageKind.QUERY:
            self._handle_query(env)
        elif env.kind == MessageKind.RESPONSE:
            self._handle_response(env)
        elif env.kind == MessageKind.UPDATE or env.kind == MessageKind.INSERT:
            self.apply_update(
                env.payload["segment"],
                env.payload["range"],
                version=cast(Optional[int], env.payload.get("version")),
                ctx=env.trace,
            )
        elif env.kind == MessageKind.UNSUBSCRIBE:
            seg = env.payload["segment"]
            self.directory.row(seg).subscribed.discard(env.src)
            self._wal(
                {"k": "unsub", "seg": [seg.newest, seg.oldest], "src": env.src}
            )
        else:  # pragma: no cover - transport validates kinds
            raise ValueError(f"unexpected envelope kind {env.kind!r}")

    def _respond(
        self, child: str, payload: _AnswerPayload, ctx: Optional[TraceContext] = None
    ) -> None:
        """Send a RESPONSE one hop down; a lost response is only counted —
        the issuing client's local fallback guarantees an answer."""
        self.system.transport.send(
            self.id,
            child,
            MessageKind.RESPONSE,
            payload,
            on_failed=self.system._on_response_lost,
            trace=ctx,
        )

    def _handle_query(self, env: Envelope) -> None:
        qid, query = env.payload["qid"], env.payload["query"]
        payload = self._try_satisfy(query, from_child=env.src)
        if payload is not None:
            self._respond(env.src, {"qid": qid, **payload}, ctx=env.trace)
            return
        if shake_mod.DETECTOR is not None:
            shake_mod.note_write(f"site:{self.id}", "pending", qid)
        self.pending[qid] = ("child", env.src, env.trace)
        self._forward_query(qid, query, env.trace)

    def _handle_response(self, env: Envelope) -> None:
        qid = env.payload["qid"]
        if shake_mod.DETECTOR is not None:
            shake_mod.note_write(f"site:{self.id}", "pending", qid)
        entry = self.pending.pop(qid, None)
        if entry is None:
            # The query was already answered degraded: the root-ward forward
            # was declared failed (its acks were lost) yet a copy got through
            # and produced this late response.  First answer wins.
            if obs.ENABLED:
                obs.counter("asr.late_responses", site=self.id).inc()
            return
        origin, target, __ = entry
        if origin == "child":
            # Continue the response chain under the incoming hop, not the
            # original forward: the trace should read request-then-response.
            self._respond(cast(str, target), env.payload, ctx=env.trace)
        else:
            cast(_AnswerCallback, target)(env.payload)

    def _on_forward_failed(self, qid: int, query: InnerProductQuery) -> None:
        """Root-ward forward exhausted its retries: serve the last-known
        summary from *this* site instead of raising (Figure 8(a) degraded)."""
        if shake_mod.DETECTOR is not None:
            shake_mod.note_write(f"site:{self.id}", "pending", qid)
        entry = self.pending.pop(qid, None)
        if entry is None:
            return  # already answered through another path
        if obs.ENABLED:
            obs.counter("asr.degraded_serves", site=self.id).inc()
        origin, target, ctx = entry
        causal = self.system.causal
        if causal is not None and ctx is not None:
            causal.event(
                "degraded_serve", at=self.system.sim.now, parent=ctx, site=self.id
            )
        payload = self.degraded_payload(query)
        if origin == "child":
            self._respond(cast(str, target), {"qid": qid, **payload}, ctx=ctx)
        else:
            cast(_AnswerCallback, target)(payload)

    def apply_update(
        self,
        seg: Segment,
        rng: Tuple[float, float],
        version: Optional[int] = None,
        ctx: Optional[TraceContext] = None,
    ) -> None:
        """Figure 8(a) update branch: enclosure-gated cascade.

        ``version`` is the sender's per-push sequence number; an update at or
        below the version already applied here is a reordered stale copy and
        is dropped (on a loss-free FIFO network versions only ever increase,
        so the guard never fires and the zero-fault path is unchanged).
        """
        if version is not None:
            if version <= self._applied_version.get(seg, 0):
                if obs.ENABLED:
                    obs.counter("asr.stale_updates_dropped", site=self.id).inc()
                causal = self.system.causal
                if causal is not None and ctx is not None:
                    causal.event(
                        "stale_update_dropped",
                        at=self.system.sim.now,
                        parent=ctx,
                        site=self.id,
                        version=version,
                    )
                return
            self._applied_version[seg] = version
        if shake_mod.DETECTOR is not None:
            shake_mod.note_write(f"site:{self.id}", "directory", seg)
        row = self.directory.row(seg)
        was_cached = row.is_cached
        enclosed = row.encloses(rng)
        row.approx = rng
        self.last_update_at[seg] = self.system.sim.now
        self._wal(
            {
                "k": "up",
                "seg": [seg.newest, seg.oldest],
                "range": [rng[0], rng[1]],
                "version": version,
                "at": self.system.sim.now,
            }
        )
        if was_cached and not enclosed:
            row.write_count += 1
            # Sorted, not set order: which child's UPDATE is *sent* first
            # decides per-edge fault-roll sequence numbers, so set iteration
            # would leak hash order into delivery fates (REP009).
            for child in sorted(row.subscribed):
                self.push_update(child, seg, rng, MessageKind.UPDATE, ctx=ctx)

    def push_update(
        self,
        child: str,
        seg: Segment,
        rng: Tuple[float, float],
        kind: str,
        ctx: Optional[TraceContext] = None,
    ) -> None:
        """Send UPDATE/INSERT to ``child``; an undeliverable push marks the
        pair unsynced for re-sync once the child is reachable again."""
        self._push_seq += 1
        # The sequence counter must survive a restart: a restored site whose
        # counter rewound would emit versions its children already applied —
        # and the stale-version guard would drop its pushes forever.
        self._wal({"k": "push", "n": self._push_seq})
        self.system.transport.send(
            self.id,
            child,
            kind,
            {"segment": seg, "range": rng, "version": self._push_seq},
            on_failed=lambda env: self._on_push_failed(child, seg),
            trace=ctx,
        )

    def _on_push_failed(self, child: str, seg: Segment) -> None:
        if obs.ENABLED:
            obs.counter("asr.unsynced_marks", site=self.id).inc()
        if shake_mod.DETECTOR is not None:
            shake_mod.note_write(f"site:{self.id}", "unsynced", child)
        self.unsynced.setdefault(child, set()).add(seg)
        self._wal({"k": "mark", "child": child, "seg": [seg.newest, seg.oldest]})
        # Reconciliation loop: bounded per-message retries plus a periodic
        # re-sync attempt, the standard shape for AP systems — the loop keeps
        # rescheduling itself until every marked child has been repaired.
        self._schedule_resync()

    def _schedule_resync(self) -> None:
        if self._resync_scheduled:
            return
        # Benign by idempotence: the guard only ever collapses concurrent
        # schedule requests into one pending tick, and a spurious extra tick
        # would re-check `unsynced` and no-op.  Tie-break order cannot change
        # observable behavior, so the write/read race is excused.
        self._resync_scheduled = True  # repro: ignore[REP008]
        delay = self.system.transport.retry_timeout * 4.0
        self.system.sim.schedule_after(
            delay, self._resync_tick, label=f"asr.resync:{self.id}"
        )

    def _resync_tick(self) -> None:
        self._resync_scheduled = False  # repro: ignore[REP008]
        self.resync()
        if self.unsynced:
            self._schedule_resync()

    def resync(self) -> None:
        """Re-push current ranges to children that missed updates and are
        reachable again; undeliverable pushes re-mark themselves."""
        transport = self.system.transport
        causal = self.system.causal
        span: Optional[Span] = None
        ctx: Optional[TraceContext] = None
        pushes = 0
        # Sorted: re-sync pushes are message emission, so dict order here
        # would feed hash order into per-edge fault-roll sequences (REP009).
        for child in sorted(self.unsynced):
            if not transport.is_up(child):
                self._schedule_resync()  # still down: try again later
                continue
            if shake_mod.DETECTOR is not None:
                shake_mod.note_write(f"site:{self.id}", "unsynced", child)
            segments = self.unsynced.pop(child)
            self._wal({"k": "unmark", "child": child})
            for seg in sorted(segments, key=lambda s: (s.newest, s.oldest)):
                row = self.directory.row(seg)
                if not row.is_cached or child not in row.subscribed:
                    continue  # the scheme moved on; nothing to restore
                if obs.ENABLED:
                    obs.counter("asr.resyncs", site=self.id).inc()
                if causal is not None and span is None:
                    span = causal.start_span(
                        "resync", at=self.system.sim.now, site=self.id
                    )
                    ctx = span.context
                assert row.approx is not None
                self.push_update(child, seg, row.approx, MessageKind.UPDATE, ctx=ctx)
                pushes += 1
        if span is not None:
            span.finish(self.system.sim.now, pushes=pushes)

    # ----------------------------------------------------------- persistence

    def _wal(self, record: Dict[str, Any]) -> None:
        """Durably log one protocol event (no-op without a checkpoint store)."""
        self.system.wal_append(self.id, record)

    def checkpoint_state(self) -> Dict[str, Any]:
        """This site's durable protocol state as a JSON-serializable dict.

        Everything is emitted in sorted/canonical order so identical sites
        checkpoint to identical bytes.  In-flight queries (``pending``) are
        deliberately absent: a crashed process's outstanding queries die with
        it, and the issuing client's degraded fallback already answers them.
        """
        return {
            "site": self.id,
            "directory": self.directory.to_state(),
            "last_update_at": [
                [seg.newest, seg.oldest, at]
                for seg, at in sorted(
                    self.last_update_at.items(),
                    key=lambda kv: (kv[0].newest, kv[0].oldest),
                )
            ],
            "unsynced": [
                [child, sorted([s.newest, s.oldest] for s in segs)]
                for child, segs in sorted(self.unsynced.items())
            ],
            "push_seq": self._push_seq,
            "applied_version": [
                [seg.newest, seg.oldest, version]
                for seg, version in sorted(
                    self._applied_version.items(),
                    key=lambda kv: (kv[0].newest, kv[0].oldest),
                )
            ],
        }

    def restore_from(
        self, state: Mapping[str, Any], records: Sequence[Any]
    ) -> None:
        """Warm-restore: adopt a checkpoint state, then replay WAL records.

        Everything is validated and reconstructed into locals first; the
        site's live state is swapped only once the whole restore has
        succeeded, so a malformed checkpoint or WAL record (:exc:`ValueError`)
        leaves the site untouched for the legacy cold-resync fallback.

        Replay is a *state* reconstruction, not a re-execution: no messages
        are sent.  ``up`` records redo the enclosure-gated row write (same
        ``write_count`` bookkeeping as :meth:`apply_update`), ``push``
        records restore the monotone sequence counter (so the restored site
        never re-issues versions its children already applied), and
        ``mark``/``unmark`` records rebuild the unsynced map.
        """
        segment_by_pair = {
            (s.newest, s.oldest): s for s in self.directory.segments
        }

        def seg_of(pair: Any) -> Segment:
            try:
                key = (int(pair[0]), int(pair[1]))
            except (TypeError, ValueError, IndexError) as exc:
                raise ValueError(
                    f"malformed site state: bad segment {pair!r}"
                ) from exc
            seg = segment_by_pair.get(key)
            if seg is None:
                raise ValueError(f"malformed site state: unknown segment {key}")
            return seg

        try:
            if state["site"] != self.id:
                raise ValueError(
                    f"malformed site state: checkpoint for {state['site']!r} "
                    f"offered to {self.id!r}"
                )
            directory = Directory(self.system.window_size)
            directory.load_state(state["directory"])
            last_update_at = {
                seg_of(entry[:2]): float(entry[2])
                for entry in state["last_update_at"]
            }
            unsynced = {
                str(child): {seg_of(pair) for pair in pairs}
                for child, pairs in state["unsynced"]
            }
            push_seq = int(state["push_seq"])
            applied = {
                seg_of(entry[:2]): int(entry[2])
                for entry in state["applied_version"]
            }
        except (KeyError, IndexError, TypeError) as exc:
            raise ValueError(f"malformed site state: {exc}") from exc

        for rec in records:
            try:
                kind = rec["k"]
                if kind == "up":
                    seg = seg_of(rec["seg"])
                    lo, hi = (float(v) for v in rec["range"])
                    row = directory.row(seg)
                    was_cached = row.is_cached
                    enclosed = row.encloses((lo, hi))
                    row.approx = (lo, hi)
                    last_update_at[seg] = float(rec["at"])
                    version = rec.get("version")
                    if version is not None:
                        applied[seg] = max(applied.get(seg, 0), int(version))
                    if was_cached and not enclosed:
                        row.write_count += 1
                elif kind == "unsub":
                    directory.row(seg_of(rec["seg"])).subscribed.discard(
                        str(rec["src"])
                    )
                elif kind == "push":
                    push_seq = max(push_seq, int(rec["n"]))
                elif kind == "mark":
                    unsynced.setdefault(str(rec["child"]), set()).add(
                        seg_of(rec["seg"])
                    )
                elif kind == "unmark":
                    unsynced.pop(str(rec["child"]), None)
                else:
                    raise ValueError(f"unknown WAL record kind {kind!r}")
            except (KeyError, IndexError, TypeError) as exc:
                raise ValueError(
                    f"malformed WAL record {rec!r}: {exc}"
                ) from exc

        self.directory = directory
        self.last_update_at = last_update_at
        self.unsynced = unsynced
        self._push_seq = push_seq
        self._applied_version = applied
        self.pending.clear()
        if self.unsynced:
            self._schedule_resync()


class AsyncSwatAsr:
    """The SWAT-ASR protocol executed over a message transport.

    Parameters
    ----------
    topology, window_size:
        As for the synchronous implementation.
    latency:
        Per-hop delivery delay in virtual seconds.
    sim:
        Optional shared simulator (a private one is created otherwise).
    faults:
        Optional :class:`~repro.network.faults.FaultPlan`; attaching one
        turns on the transport's reliability sublayer and this protocol's
        graceful degradation (see the module docstring).  ``None`` keeps the
        perfect-network behavior bit-identical to before.
    retry_timeout, max_retries:
        Reliability tuning forwarded to the transport (fault mode only).
    check_invariants:
        Run :func:`repro.contracts.check_async_asr` after every arrival and
        phase boundary; ``None`` defers to ``REPRO_CHECK_INVARIANTS``.
    causal:
        Optional :class:`~repro.obs.causal.CausalTracer`; defaults to the
        ambient tracer (:func:`repro.obs.causal.current_causal`), so
        ``enable_causal()`` before construction traces every query, update
        cascade, and phase as a connected span tree.
    checkpoints:
        Optional :class:`~repro.persist.CheckpointStore`; attaching one
        turns on durable per-site checkpoints plus write-ahead logging, and
        crash recovery *warm-restores* sites from their latest valid
        checkpoint instead of distrusting everything they knew.  A missing
        or corrupt checkpoint falls back to the legacy distrust-and-resync
        path.  ``None`` (the default) keeps behavior identical to before.
    checkpoint_policy:
        When to cut checkpoints (requires ``checkpoints``); defaults to
        :class:`~repro.persist.CheckpointPolicy`'s every-phase trigger.
    governor:
        Optional :class:`~repro.control.governor.ReplicaGovernor` capping
        cached directory rows per client site.  At each phase end — after
        the protocol's own contraction pass — an over-budget site evicts
        its least-read unpinned rows through the ordinary unsubscribe path
        and re-negotiates precision later if interest returns.  ``None``
        (the default) keeps behavior bit-identical to before.
    """

    name = "SWAT-ASR (async)"

    def __init__(
        self,
        topology: Topology,
        window_size: int,
        latency: float = 0.0,
        sim: Optional[Simulator] = None,
        faults: Optional[FaultPlan] = None,
        retry_timeout: Optional[float] = None,
        max_retries: int = 3,
        check_invariants: Optional[bool] = None,
        causal: Optional[CausalTracer] = None,
        checkpoints: Optional[CheckpointStore] = None,
        checkpoint_policy: Optional[CheckpointPolicy] = None,
        governor: Optional[ReplicaGovernor] = None,
    ) -> None:
        self.topology = topology
        self.window_size = window_size
        self.sim = sim or Simulator()
        self.causal = causal if causal is not None else causal_mod.current_causal()
        self.transport = Transport(
            self.sim,
            topology,
            latency=latency,
            faults=faults,
            retry_timeout=retry_timeout,
            max_retries=max_retries,
            causal=self.causal,
        )
        self.window = GroundTruthWindow(window_size)
        self.sites: Dict[str, _Site] = {
            node: _Site(node, self) for node in topology.nodes
        }
        for node, site in self.sites.items():
            self.transport.register(node, site.handle)
        self._segments = self.sites[topology.root].directory.segments
        # One grouping cache for all sites: segments depend only on N.
        self._segment_plans = SegmentPlanCache(self.sites[topology.root].directory)
        self.query_latencies: List[float] = []
        self.query_outcomes: List[QueryOutcome] = []
        self.last_query_hops = 0
        self._check = contracts.resolve_check_flag(check_invariants)
        if checkpoint_policy is not None and checkpoints is None:
            raise ValueError("checkpoint_policy requires a CheckpointStore")
        self.checkpoints = checkpoints
        self.checkpoint_policy = (
            checkpoint_policy
            if checkpoint_policy is not None
            else (CheckpointPolicy() if checkpoints is not None else None)
        )
        #: Stream arrivals since the last checkpoint (policy arrival trigger).
        self._arrivals_since_ckpt = 0
        #: site -> recovery time already handled by a warm-restore attempt,
        #: so each crash window triggers exactly one restore.
        self._recovered_through: Dict[str, float] = {}
        #: Global checkpoint sequence number; part of the torn-write roll key
        #: so every write's fate is an independent (but seeded) draw.
        self._ckpt_seq = 0
        self.governor = governor

    @property
    def stats(self) -> "MessageStats":
        return self.transport.stats

    @property
    def faults(self) -> Optional[FaultPlan]:
        return self.transport.faults

    @property
    def is_warm(self) -> bool:
        return len(self.window) >= self.window_size

    def group_by_segment(
        self, query: InnerProductQuery
    ) -> Mapping[Segment, Sequence[int]]:
        """Query indices grouped by directory segment (cached per shape).

        The grouping is shared between calls — treat it as read-only.
        """
        return self._segment_plans.group(query.indices)

    def _on_response_lost(self, env: Envelope) -> None:
        if obs.ENABLED:
            obs.counter("asr.lost_responses").inc()

    def _resync_all(self) -> None:
        """Give every site a chance to repair children that missed updates."""
        for node in self.topology.nodes:
            site = self.sites[node]
            if site.unsynced:
                site.resync()

    # ----------------------------------------------------- durable checkpoints

    def wal_append(self, site: str, record: Dict[str, Any]) -> None:
        """Append one record to ``site``'s WAL (no-op without a store).

        A full WAL forces a checkpoint first — the bound exists so replay
        time stays bounded, and cutting a checkpoint is exactly how the
        bound is honored.
        """
        if self.checkpoints is None:
            return
        wal = self.checkpoints.wal(site)
        if wal.is_full:
            self._checkpoint_site(site)  # resets the WAL
        wal.append(record)

    def checkpoint_all(self) -> None:
        """Cut a checkpoint for every live site and reset the arrival counter.

        Crashed sites are skipped: a dead process cannot write, and its
        last on-disk checkpoint + WAL is precisely what recovery should see.
        """
        if self.checkpoints is None:
            return
        for node in self.topology.nodes:
            if not self.transport.is_up(node):
                continue
            self._checkpoint_site(node)
        # Benign by construction: on_data/on_phase_end are driver-sequenced
        # entry points, never same-timestamp simulator events, and a
        # reset/increment tie could only shift the *next* arrival-triggered
        # checkpoint by one arrival — query answers are unaffected.
        self._arrivals_since_ckpt = 0  # repro: ignore[REP008]

    def _checkpoint_site(self, site_id: str) -> None:
        assert self.checkpoints is not None
        site = self.sites[site_id]
        span: Optional[Span] = None
        if self.causal is not None:
            span = self.causal.start_span(
                "checkpoint.write", at=self.sim.now, site=site_id
            )
        self._ckpt_seq += 1
        written = self.checkpoints.write(
            site_id,
            SITE_CHECKPOINT_KIND,
            site.checkpoint_state(),
            {"site": site_id, "at": self.sim.now, "window_size": self.window_size},
            faults=self.faults,
            torn_key=(zlib.crc32(site_id.encode("utf-8")), self._ckpt_seq),
        )
        if span is not None:
            span.finish(self.sim.now, bytes=written)

    def _note_arrival(self) -> None:
        if self.checkpoint_policy is None:
            return
        self._arrivals_since_ckpt += 1
        if self.checkpoint_policy.due_after_arrival(self._arrivals_since_ckpt):
            self.checkpoint_all()  # resets the counter

    def _handle_recoveries(self) -> None:
        """Warm-restore any site whose crash window has just ended.

        Called at the top of every entry point (arrival, query, phase) after
        virtual time has advanced, i.e. the first moment the driver touches
        the protocol once a site is back up — the same moment the legacy
        distrust window starts, so the two recovery paths are compared from
        identical starting lines.
        """
        if self.checkpoints is None or self.faults is None:
            return
        for node in self.topology.nodes:
            recovered_at = self.faults.last_recovery_before(node, self.sim.now)
            if recovered_at is None:
                continue
            if self._recovered_through.get(node, float("-inf")) >= recovered_at:
                continue
            self._recovered_through[node] = recovered_at
            self._warm_restore(node, recovered_at)

    def _warm_restore(self, node: str, recovered_at: float) -> None:
        """Restore ``node`` from checkpoint + WAL; fall back silently.

        Any failure — missing file, checksum mismatch (torn write), or a
        state dict that fails validation — leaves the site on the legacy
        distrust-and-resync path: exactly the behavior this subsystem's
        ``checkpoints=None`` mode has, just with a counter explaining why.
        """
        assert self.checkpoints is not None
        site = self.sites[node]
        span: Optional[Span] = None
        if self.causal is not None:
            span = self.causal.start_span(
                "checkpoint.load", at=self.sim.now, site=node
            )
        try:
            state, _meta = load_checkpoint(
                self.checkpoints.checkpoint_path(node), SITE_CHECKPOINT_KIND
            )
        except FileNotFoundError:
            if obs.ENABLED:
                obs.counter("checkpoint.load.missing").inc()
            if span is not None:
                span.finish(self.sim.now, outcome="missing")
            return
        except CheckpointCorruptError:
            # checkpoint.load.corrupt was bumped by the loader.
            if span is not None:
                span.finish(self.sim.now, outcome="corrupt")
            return
        if span is not None:
            span.finish(self.sim.now, outcome="ok")
        records, _torn = self.checkpoints.wal(node).replay()
        replay_span: Optional[Span] = None
        if self.causal is not None:
            replay_span = self.causal.start_span(
                "checkpoint.replay", at=self.sim.now, site=node
            )
        try:
            site.restore_from(state, records)
        except ValueError:
            # Checksum-valid but semantically invalid state (e.g. written by
            # a different configuration): refuse it, keep the cold path.
            if obs.ENABLED:
                obs.counter("checkpoint.load.corrupt").inc()
            if replay_span is not None:
                replay_span.finish(self.sim.now, outcome="invalid")
            return
        site.trusted_restore_through = recovered_at
        if replay_span is not None:
            replay_span.finish(
                self.sim.now, outcome="ok", records=len(records)
            )
        if obs.ENABLED:
            obs.counter("checkpoint.warm_restores", site=node).inc()
            obs.histogram("checkpoint.replay.records").observe(len(records))

    # ------------------------------------------------------------- data path

    def on_data(self, value: float, now: Optional[float] = None) -> None:
        """A stream arrival at the source; update cascades are real messages.

        With a fault plan attached, recovered children are re-synced first,
        and a crashed source skips the cascade (the window still tracks the
        true stream so recovery resumes from fresh ranges).
        """
        if now is not None and now > self.sim.now:
            self.sim.run_until(now)
        self._handle_recoveries()
        self.window.update(value)
        if not self.is_warm:
            self._note_arrival()
            return
        if self.faults is not None:
            self._resync_all()
        source = self.sites[self.topology.root]
        root_span: Optional[Span] = None
        ctx: Optional[TraceContext] = None
        if self.transport.is_up(self.topology.root):
            if self.causal is not None:
                root_span = self.causal.start_span(
                    "update",
                    at=self.sim.now,
                    site=self.topology.root,
                    protocol=self.name,
                )
                ctx = root_span.context
            for seg in self._segments:
                rng = self.window.segment_range(seg.newest, seg.oldest)
                source.apply_update(seg, rng, ctx=ctx)
        self.transport.drain()
        if root_span is not None and self.causal is not None:
            # Finished after the drain so the span covers the whole cascade
            # (retransmissions included), not just the source-local apply.
            root_span.finish(self.sim.now)
            causal_mod.record_update_trace(self.causal, root_span, self.name)
        self._note_arrival()
        if self._check:
            contracts.check_async_asr(self)

    # ------------------------------------------------------------ query path

    def on_query(
        self, client: str, query: InnerProductQuery, now: Optional[float] = None
    ) -> float:
        """Issue a query and wait (in virtual time) for its answer.

        Returns the answer value; the full :class:`QueryOutcome` (interval,
        degraded flag, staleness stamp, measured latency) is appended to
        :attr:`query_outcomes`.  Under a fault plan this never raises: a
        crashed client or a fully lost response chain degrades to the
        client's last-known summary instead.
        """
        if not self.is_warm:
            raise RuntimeError("stream window not yet full; warm up before querying")
        if now is not None and now > self.sim.now:
            self.sim.run_until(now)
        self._handle_recoveries()
        issued_at = self.sim.now
        box: Dict[str, Any] = {}

        def deliver(payload: _AnswerPayload) -> None:
            box["payload"] = payload
            box["at"] = self.sim.now

        root_span: Optional[Span] = None
        ctx: Optional[TraceContext] = None
        if self.causal is not None:
            root_span = self.causal.start_span(
                "query", at=issued_at, site=client, protocol=self.name
            )
            ctx = root_span.context

        site = self.sites[client]
        if not self.transport.is_up(client):
            # The client site itself is down: its local stub answers from
            # the last-known directory rather than erroring out.
            if self.causal is not None:
                self.causal.event(
                    "degraded_stub", at=self.sim.now, parent=ctx, site=client
                )
            deliver(site.degraded_payload(query))
        else:
            qid = site.issue_query(query, deliver, ctx=ctx)
            self.transport.drain()
            if "payload" not in box:
                if self.faults is None:  # pragma: no cover - drain guarantees delivery
                    raise RuntimeError("query was not answered after drain")
                # The response chain was lost beyond the retry cap at some
                # interior hop; serve the client's own last-known summary.
                if qid is not None:
                    site.pending.pop(qid, None)
                if self.causal is not None:
                    self.causal.event(
                        "degraded_stub", at=self.sim.now, parent=ctx, site=client
                    )
                deliver(site.degraded_payload(query))

        payload = cast(_AnswerPayload, box["payload"])
        weights = dict(zip(query.indices, query.weights))
        estimates = cast(Dict[int, float], payload["estimates"])
        halfwidths = cast(Dict[int, float], payload.get("halfwidths", {}))
        value = sum(weights[i] * estimates[i] for i in query.indices)
        slack = sum(abs(weights[i]) * halfwidths.get(i, 0.0) for i in query.indices)
        served_by = cast(str, payload.get("served_by", client))
        degraded = bool(payload.get("degraded", False))
        if degraded and obs.ENABLED:
            obs.counter("asr.degraded_answers").inc()
        if root_span is not None and self.causal is not None:
            # The span ends when the *answer* landed, not when the drain
            # returned: late retransmissions after a degraded answer stay in
            # the tree but out of this query's wall-clock.
            root_span.finish(
                cast(float, box["at"]), degraded=degraded, served_by=served_by
            )
            causal_mod.record_query_trace(self.causal, root_span, self.name)
        outcome = QueryOutcome(
            client=client,
            value=value,
            interval=(value - slack, value + slack),
            degraded=degraded,
            stale_since=cast(Optional[float], payload.get("stale_since")),
            served_by=served_by,
            issued_at=issued_at,
            answered_at=cast(float, box["at"]),
            trace_id=None if root_span is None else root_span.trace_id,
        )
        self.query_outcomes.append(outcome)
        self.query_latencies.append(outcome.latency)
        self.last_query_hops = 2 * (
            self.topology.depth(client) - self.topology.depth(served_by)
        )
        return value

    # ------------------------------------------------------------- phase end

    def on_phase_end(self, now: Optional[float] = None) -> None:
        """Figure 8(b) with real messages; drains between steps so tests see
        effects in the synchronous implementation's order at zero latency."""
        if now is not None and now > self.sim.now:
            self.sim.run_until(now)
        self._handle_recoveries()
        if self.faults is not None:
            self._resync_all()
        root_span: Optional[Span] = None
        ctx: Optional[TraceContext] = None
        if self.causal is not None:
            root_span = self.causal.start_span(
                "phase", at=self.sim.now, site=self.topology.root, protocol=self.name
            )
            ctx = root_span.context
        root = self.topology.root
        clients = sorted(self.topology.clients, key=self.topology.depth, reverse=True)
        for node in clients:
            site = self.sites[node]
            if not self.transport.is_up(node):
                continue  # a crashed site runs no contraction test this phase
            for seg in self._segments:
                row = site.directory.row(seg)
                if row.is_cached and not row.subscribed:
                    if row.local_reads < row.write_count:
                        row.approx = None
                        parent = self.topology.parent(node)
                        assert parent is not None
                        self.transport.send(
                            node,
                            parent,
                            MessageKind.UNSUBSCRIBE,
                            {"segment": seg},
                            trace=ctx,
                        )
            self.transport.drain()
        if self.governor is not None:
            # Cache-row budget pass: runs after contraction (so rows the
            # protocol already dropped are not double-counted) and before
            # the push loop (so evicted rows receive no fresh pushes this
            # phase).  Same deterministic site order as contraction.
            for node in clients:
                if not self.transport.is_up(node):
                    continue
                site = self.sites[node]
                rows: List[Tuple[Segment, int, bool]] = []
                for seg in self._segments:
                    row = site.directory.row(seg)
                    if row.is_cached:
                        # A row with subscribed children is pinned: evicting
                        # it would break the Section 3 precision chain.
                        rows.append((seg, row.local_reads, bool(row.subscribed)))
                evict = self.governor.select_evictions(rows)
                for seg in evict:
                    site.directory.row(seg).approx = None
                    parent = self.topology.parent(node)
                    assert parent is not None
                    self.transport.send(
                        node,
                        parent,
                        MessageKind.UNSUBSCRIBE,
                        {"segment": seg},
                        trace=ctx,
                    )
                    self.governor.rows_evicted += 1
                    if obs.ENABLED:
                        obs.counter("shed.asr.rows_evicted").inc()
                if evict:
                    self.transport.drain()
        for node in self.topology.nodes:
            site = self.sites[node]
            if not self.transport.is_up(node):
                continue
            for seg in self._segments:
                row = site.directory.row(seg)
                if node != root and not row.is_cached:
                    row.interested.clear()
                    continue
                # Sorted, not set order: these pushes are message emission,
                # so iteration order decides per-edge fault-roll sequence
                # numbers (REP009); hash order must not leak into fates.
                for v in sorted(row.subscribed):
                    if row.write_count < row.read_counts.get(v, 0):
                        assert row.approx is not None
                        site.push_update(v, seg, row.approx, MessageKind.UPDATE, ctx=ctx)
                for v in sorted(row.interested):
                    row.interested.discard(v)
                    if row.write_count < row.read_counts.get(v, 0):
                        row.subscribed.add(v)
                        assert row.approx is not None
                        site.push_update(v, seg, row.approx, MessageKind.INSERT, ctx=ctx)
            self.transport.drain()
        if root_span is not None:
            root_span.finish(self.sim.now)
        for node in self.topology.nodes:
            for seg in self._segments:
                self.sites[node].directory.row(seg).reset_counts()
        if self.checkpoint_policy is not None and self.checkpoint_policy.every_phase:
            # After the count reset so the checkpoint captures the same
            # fresh-phase state an uncrashed site would start the next phase
            # with (subscription changes from this phase included).
            self.checkpoint_all()
        if self._check:
            contracts.check_async_asr(self)

    # --------------------------------------------------------------- metrics

    def approximation_count(self) -> int:
        total = sum(
            self.sites[node].directory.cached_count()
            for node in self.topology.clients
        )
        return total + len(self._segments)

    def mean_query_latency(self) -> float:
        """Average measured response time over all answered queries."""
        if not self.query_latencies:
            raise ValueError("no queries answered yet")
        return sum(self.query_latencies) / len(self.query_latencies)

    def degraded_count(self) -> int:
        """Answers served degraded (stale summary + widened interval)."""
        return sum(1 for o in self.query_outcomes if o.degraded)
