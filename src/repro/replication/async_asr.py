"""SWAT-ASR as communicating actors over a real message transport.

The synchronous :class:`~repro.replication.asr.SwatAsr` models messages as
counted function calls.  This module runs the *same protocol* as a set of
site actors exchanging envelopes through
:class:`repro.network.transport.Transport`: queries travel hop by hop with
request/response correlation ids, updates cascade as real deliveries, and
per-hop latency is an actual simulator delay — so response latency is
measured, not derived.

At zero latency the execution is step-for-step equivalent to the synchronous
implementation: identical message counts, identical answers, identical
directory state (asserted in ``tests/test_async_asr.py``).  With positive
latency the protocol exhibits what a real deployment would: stale reads in
flight, delayed refreshes, and measurable round-trip times.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, cast

from ..core.queries import InnerProductQuery
from ..metrics.error import GroundTruthWindow
from ..network.directory import Directory, DirectoryRow, Segment
from ..network.messages import MessageKind, MessageStats
from ..network.topology import Topology
from ..network.transport import Envelope, Transport
from ..simulate.events import Simulator

__all__ = ["AsyncSwatAsr"]


class _Site:
    """One site actor: a directory plus pending-query bookkeeping."""

    def __init__(self, node_id: str, system: "AsyncSwatAsr") -> None:
        self.id = node_id
        self.system = system
        self.directory = Directory(system.window_size)
        # qid -> ("child", child_id) | ("local", callback)
        self.pending: Dict[int, Tuple[str, object]] = {}

    # --------------------------------------------------------------- queries

    def issue_query(
        self, query: InnerProductQuery, callback: Callable[[Dict[int, float]], None]
    ) -> None:
        estimates = self._try_satisfy(query, from_child=None)
        if estimates is not None:
            callback(estimates)
            return
        qid = self.system.transport.fresh_id()
        self.pending[qid] = ("local", callback)
        self._forward_query(qid, query)

    def _forward_query(self, qid: int, query: InnerProductQuery) -> None:
        parent = self.system.topology.parent(self.id)
        self.system.transport.send(
            self.id, parent, MessageKind.QUERY, {"qid": qid, "query": query}
        )

    def _try_satisfy(
        self, query: InnerProductQuery, from_child: Optional[str]
    ) -> Optional[Dict[int, float]]:
        """Figure 8(a) query branch: whole-query precision test at this site."""
        by_segment = self.system.group_by_segment(query)
        weights = dict(zip(query.indices, query.weights))
        if self.id == self.system.topology.root:
            for seg in by_segment:
                self._count_read(self.directory.row(seg), from_child)
            return {i: self.system.window[i] for i in query.indices}
        offered = 0.0
        for seg, indices in by_segment.items():
            offered += sum(weights[i] for i in indices) * self.directory.row(seg).width
        if offered > query.precision:
            return None
        estimates: Dict[int, float] = {}
        for seg, indices in by_segment.items():
            row = self.directory.row(seg)
            self._count_read(row, from_child)
            for idx in indices:
                estimates[idx] = row.midpoint
        return estimates

    @staticmethod
    def _count_read(row: DirectoryRow, from_child: Optional[str]) -> None:
        if from_child is None:
            row.local_reads += 1
        else:
            row.note_read(from_child)

    # -------------------------------------------------------------- messages

    def handle(self, env: Envelope) -> None:
        if env.kind == MessageKind.QUERY:
            self._handle_query(env)
        elif env.kind == MessageKind.RESPONSE:
            self._handle_response(env)
        elif env.kind == MessageKind.UPDATE or env.kind == MessageKind.INSERT:
            self.apply_update(env.payload["segment"], env.payload["range"])
        elif env.kind == MessageKind.UNSUBSCRIBE:
            self.directory.row(env.payload["segment"]).subscribed.discard(env.src)
        else:  # pragma: no cover - transport validates kinds
            raise ValueError(f"unexpected envelope kind {env.kind!r}")

    def _handle_query(self, env: Envelope) -> None:
        qid, query = env.payload["qid"], env.payload["query"]
        estimates = self._try_satisfy(query, from_child=env.src)
        if estimates is not None:
            self.system.transport.send(
                self.id, env.src, MessageKind.RESPONSE,
                {"qid": qid, "estimates": estimates},
            )
            return
        self.pending[qid] = ("child", env.src)
        self._forward_query(qid, query)

    def _handle_response(self, env: Envelope) -> None:
        qid = env.payload["qid"]
        origin, target = self.pending.pop(qid)
        if origin == "child":
            self.system.transport.send(
                self.id, cast(str, target), MessageKind.RESPONSE, env.payload
            )
        else:
            cast(Callable[[Dict[int, float]], None], target)(env.payload["estimates"])

    def apply_update(self, seg: Segment, rng: Tuple[float, float]) -> None:
        """Figure 8(a) update branch: enclosure-gated cascade."""
        row = self.directory.row(seg)
        was_cached = row.is_cached
        enclosed = row.encloses(rng)
        row.approx = rng
        if was_cached and not enclosed:
            row.write_count += 1
            for child in list(row.subscribed):
                self.system.transport.send(
                    self.id, child, MessageKind.UPDATE,
                    {"segment": seg, "range": rng},
                )


class AsyncSwatAsr:
    """The SWAT-ASR protocol executed over a message transport.

    Parameters
    ----------
    topology, window_size:
        As for the synchronous implementation.
    latency:
        Per-hop delivery delay in virtual seconds.
    sim:
        Optional shared simulator (a private one is created otherwise).
    """

    name = "SWAT-ASR (async)"

    def __init__(
        self,
        topology: Topology,
        window_size: int,
        latency: float = 0.0,
        sim: Optional[Simulator] = None,
    ) -> None:
        self.topology = topology
        self.window_size = window_size
        self.sim = sim or Simulator()
        self.transport = Transport(self.sim, topology, latency=latency)
        self.window = GroundTruthWindow(window_size)
        self.sites: Dict[str, _Site] = {
            node: _Site(node, self) for node in topology.nodes
        }
        for node, site in self.sites.items():
            self.transport.register(node, site.handle)
        self._segments = self.sites[topology.root].directory.segments
        self.query_latencies: List[float] = []

    @property
    def stats(self) -> "MessageStats":
        return self.transport.stats

    @property
    def is_warm(self) -> bool:
        return len(self.window) >= self.window_size

    def group_by_segment(self, query: InnerProductQuery) -> Dict[Segment, List[int]]:
        root_dir = self.sites[self.topology.root].directory
        out: Dict[Segment, List[int]] = {}
        for idx in query.indices:
            out.setdefault(root_dir.segment_of(idx), []).append(idx)
        return out

    # ------------------------------------------------------------- data path

    def on_data(self, value: float, now: Optional[float] = None) -> None:
        """A stream arrival at the source; update cascades are real messages."""
        if now is not None and now > self.sim.now:
            self.sim.run_until(now)
        self.window.update(value)
        if not self.is_warm:
            return
        source = self.sites[self.topology.root]
        for seg in self._segments:
            rng = self.window.segment_range(seg.newest, seg.oldest)
            source.apply_update(seg, rng)
        self.transport.drain()

    # ------------------------------------------------------------ query path

    def on_query(
        self, client: str, query: InnerProductQuery, now: Optional[float] = None
    ) -> float:
        """Issue a query and wait (in virtual time) for its answer.

        Returns the answer and records the measured response latency in
        :attr:`query_latencies`.
        """
        if not self.is_warm:
            raise RuntimeError("stream window not yet full; warm up before querying")
        if now is not None and now > self.sim.now:
            self.sim.run_until(now)
        issued_at = self.sim.now
        box: Dict[str, float] = {}

        def deliver(estimates: Dict[int, float]) -> None:
            weights = dict(zip(query.indices, query.weights))
            box["answer"] = sum(weights[i] * estimates[i] for i in query.indices)
            box["at"] = self.sim.now

        self.sites[client].issue_query(query, deliver)
        self.transport.drain()
        if "answer" not in box:  # pragma: no cover - drain guarantees delivery
            raise RuntimeError("query was not answered after drain")
        self.query_latencies.append(box["at"] - issued_at)
        return box["answer"]

    # ------------------------------------------------------------- phase end

    def on_phase_end(self, now: Optional[float] = None) -> None:
        """Figure 8(b) with real messages; drains between steps so tests see
        effects in the synchronous implementation's order at zero latency."""
        if now is not None and now > self.sim.now:
            self.sim.run_until(now)
        root = self.topology.root
        clients = sorted(self.topology.clients, key=self.topology.depth, reverse=True)
        for node in clients:
            site = self.sites[node]
            for seg in self._segments:
                row = site.directory.row(seg)
                if row.is_cached and not row.subscribed:
                    if row.local_reads < row.write_count:
                        row.approx = None
                        self.transport.send(
                            node, self.topology.parent(node),
                            MessageKind.UNSUBSCRIBE, {"segment": seg},
                        )
            self.transport.drain()
        for node in self.topology.nodes:
            site = self.sites[node]
            for seg in self._segments:
                row = site.directory.row(seg)
                if node != root and not row.is_cached:
                    row.interested.clear()
                    continue
                for v in list(row.subscribed):
                    if row.write_count < row.read_counts.get(v, 0):
                        self.transport.send(
                            node, v, MessageKind.UPDATE,
                            {"segment": seg, "range": row.approx},
                        )
                for v in list(row.interested):
                    row.interested.discard(v)
                    if row.write_count < row.read_counts.get(v, 0):
                        row.subscribed.add(v)
                        self.transport.send(
                            node, v, MessageKind.INSERT,
                            {"segment": seg, "range": row.approx},
                        )
            self.transport.drain()
        for site in self.sites.values():
            for seg in self._segments:
                site.directory.row(seg).reset_counts()

    # --------------------------------------------------------------- metrics

    def approximation_count(self) -> int:
        total = sum(
            self.sites[node].directory.cached_count()
            for node in self.topology.clients
        )
        return total + len(self._segments)

    def mean_query_latency(self) -> float:
        """Average measured response time over all answered queries."""
        if not self.query_latencies:
            raise ValueError("no queries answered yet")
        return sum(self.query_latencies) / len(self.query_latencies)
