"""Common interface for the three replication protocols of Sections 3-4.

All protocols run on a spanning tree (:class:`repro.network.Topology`) with
the stream source at the root, are driven by three callbacks — ``on_data``
(a new stream value arrives at the source), ``on_query`` (a client issues an
inner-product query with a precision requirement), ``on_phase_end`` (ADR
phase boundary; a no-op for DC and APS) — and are scored by hop-counted
messages in a shared :class:`repro.network.MessageStats`.

Precision allocation: SWAT-ASR tests the *whole* query — the total offered
precision ``sum_i W[i] * width(segment(i))`` against ``delta``, as in the
Section 3 walk-through.  DC and APS run per data item (the paper's setup),
so a query decomposes into per-item reads with weight-proportional
tolerances ``t_i = delta / (M * W[i])`` — the unique per-item split with
``sum_i W[i] * t_i = delta``.  Midpoint answers then err by at most
``delta / 2`` under every protocol.
"""

from __future__ import annotations

import abc

from ..core.queries import InnerProductQuery
from ..metrics.error import GroundTruthWindow
from ..network.messages import MessageStats
from ..network.topology import Topology
from ..obs import causal as causal_mod

__all__ = ["ReplicationProtocol", "uniform_tolerance", "per_index_tolerances"]


def uniform_tolerance(query: InnerProductQuery) -> float:
    """Per-index range-width threshold ``delta / sum(W)`` for a query."""
    total_w = sum(query.weights)
    if total_w <= 0:
        raise ValueError("query weights must have positive total")
    return query.precision / total_w


def per_index_tolerances(query: InnerProductQuery) -> dict:
    """Weight-proportional per-item read tolerances ``t_i = delta / (M W[i])``.

    High-weight (recent) items get tight tolerances; the allocation is the
    unique per-item split with ``sum_i W[i] * t_i = delta``.
    """
    m = query.length
    out = {}
    for idx, w in zip(query.indices, query.weights):
        if w <= 0:
            raise ValueError("query weights must be positive")
        out[idx] = query.precision / (m * w)
    return out


class ReplicationProtocol(abc.ABC):
    """Base class handling the state shared by all three protocols."""

    name = "base"

    def __init__(self, topology: Topology, window_size: int) -> None:
        self.topology = topology
        self.window_size = window_size
        # Registry mirror is labelled with the protocol's figure-legend name,
        # giving per-protocol ``messages.*{protocol=...}`` counters.
        self.stats = MessageStats(protocol=self.name)
        self.window = GroundTruthWindow(window_size)
        # Round-trip hops of the most recent query (0 = served from cache);
        # the harness turns this into a latency figure.
        self.last_query_hops = 0
        # Causal tracer picked up at construction (None when tracing is off):
        # the disabled hot path is one attribute check per operation.
        self.causal = causal_mod.current_causal()

    @property
    def is_warm(self) -> bool:
        """True once the source has observed a full window."""
        return len(self.window) >= self.window_size

    def on_data(self, value: float, now: float = 0.0) -> None:
        """A new stream value arrives at the source."""
        self.window.update(value)
        if self.is_warm:
            self._propagate(value, now)

    @abc.abstractmethod
    def _propagate(self, value: float, now: float) -> None:
        """Protocol-specific handling of a (post-warm-up) data arrival."""

    @abc.abstractmethod
    def on_query(self, client: str, query: InnerProductQuery, now: float = 0.0) -> float:
        """A client issues a query; returns the (approximate) answer."""

    def on_phase_end(self, now: float = 0.0) -> None:
        """ADR phase boundary; default no-op (DC and APS are phase-free)."""

    @abc.abstractmethod
    def approximation_count(self) -> int:
        """Cached approximations across all client sites (space metric, §5.1)."""

    def _hops(self, node: str) -> int:
        """Hop distance from ``node`` to the source."""
        return self.topology.depth(node)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(N={self.window_size}, sites={len(self.topology)})"
