"""Divergence Caching, adapted to precision tolerances (Section 4.1).

The original algorithm (Huang, Sloan & Wolfson, PDIS'94) caches a single
object per client and picks a *refresh rate* minimising expected message
cost under Poisson read/write models estimated from a window of past events.
The paper's adaptation — implemented here — reinterprets the refresh rate as
the **width** ``k = d_H - d_L`` of a cached range:

* a read with tolerance ``t`` hits iff ``t >= k`` (misses are *relevant*);
* a server write transmits the new value only when it escapes the cached
  range (*unsolicited refresh*);
* on a miss the server returns the exact value together with a freshly
  optimised width ``k*`` chosen by the expected-cost formula over
  ``k in {0, ..., M}`` (``M`` = the maximum value range).

The protocol runs **independently per data item** of the window (so a site
holds ``O(N)`` approximations) and, in our tree setting, messages are
hop-counted along the path to the source.

Adaptation notes (DESIGN.md §3): read rates per tolerance are estimated from
a per-item window of the last 23 read events; the write rate — identical for
every item, since each arrival shifts the whole window — is estimated from
the last 23 arrivals.  The paper's window of 23 events is kept.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Tuple

import numpy as np

from ..core.queries import InnerProductQuery
from ..network.messages import MessageKind
from ..network.topology import Topology
from .base import ReplicationProtocol, per_index_tolerances

__all__ = ["DivergenceCaching", "optimal_refresh_width"]

EVENT_WINDOW = 23  # the window size used in [11] and kept by the paper


def optimal_refresh_width(
    read_tolerances: np.ndarray,
    read_rate: float,
    write_rate: float,
    max_range: int,
    control_cost: float = 1.0,
) -> int:
    """Minimum-expected-cost width ``k`` per the Section 4.1 formulas.

    Parameters
    ----------
    read_tolerances:
        Tolerances (integer bins in ``[0, max_range]``) of the recent reads.
    read_rate:
        Total read arrivals per time unit (all tolerances together).
    write_rate:
        Write arrivals per time unit (``lambda_w``).
    max_range:
        ``M``, the maximum possible range of the data value.
    control_cost:
        ``w``, the cost of a control message relative to a data message.

    Returns
    -------
    int
        The width ``k`` in ``{0, ..., M}`` minimising expected cost per unit
        time::

            cost(0)  = lambda_w
            cost(k)  = r(k)(1 + w) + (M - k)/M (lambda_w + r(k)),  0 < k < M
            cost(M)  = (w + 1) * sum_t lambda_{r_t}

        where ``r(k) = sum_{t < k} lambda_{r_t}`` is the rate of *relevant*
        (missing) reads at width ``k``.
    """
    m = int(max_range)
    if m < 1:
        raise ValueError("max_range must be >= 1")
    hist = np.zeros(m + 1, dtype=np.float64)
    tols = np.clip(read_tolerances.astype(np.int64), 0, m)
    if tols.size:
        np.add.at(hist, tols, 1.0)
        hist *= read_rate / tols.size  # convert counts to rates
    # r(k) = rate of reads with tolerance < k, for k = 0..M.
    r = np.concatenate([[0.0], np.cumsum(hist[:m])])
    k = np.arange(m + 1, dtype=np.float64)
    cost = r * (1.0 + control_cost) + (m - k) / m * (write_rate + r)
    cost[0] = write_rate
    cost[m] = (control_cost + 1.0) * (read_rate if tols.size else 0.0)
    return int(np.argmin(cost))


class _ClientState:
    """Per-client cached intervals (vectorised over the window's items)."""

    __slots__ = ("lo", "hi", "reads")

    def __init__(self, n_items: int, max_range: float) -> None:
        # Width-M intervals behave exactly like "not cached": every write
        # stays inside, every read with tolerance < M misses.
        self.lo = np.zeros(n_items, dtype=np.float64)
        self.hi = np.full(n_items, max_range, dtype=np.float64)
        self.reads: Dict[int, Deque[Tuple[float, int]]] = {}

    def width(self, item: int) -> float:
        return self.hi[item] - self.lo[item]


class DivergenceCaching(ReplicationProtocol):
    """Divergence Caching over a spanning tree, one scheme per window item."""

    name = "DC"

    def __init__(
        self,
        topology: Topology,
        window_size: int,
        value_range: Tuple[float, float] = (0.0, 100.0),
        control_cost: float = 1.0,
    ) -> None:
        super().__init__(topology, window_size)
        lo, hi = value_range
        if hi <= lo:
            raise ValueError("value_range must be non-degenerate")
        self.value_low = lo
        self.max_range = int(np.ceil(hi - lo))
        self.control_cost = control_cost
        self.clients: Dict[str, _ClientState] = {
            c: _ClientState(window_size, self.max_range) for c in self.topology.clients
        }
        self._arrivals: Deque[float] = deque(maxlen=EVENT_WINDOW)

    # ------------------------------------------------------------- data path

    def _propagate(self, value: float, now: float) -> None:
        """Each arrival rewrites every window item; refresh escaped intervals."""
        self._arrivals.append(now)
        vals = self.window.values_newest_first() - self.value_low
        for client, state in self.clients.items():
            escaped = (vals < state.lo) | (vals > state.hi)
            n = int(np.count_nonzero(escaped))
            if n:
                # Unsolicited refresh: re-centre at the new value, same width.
                widths = state.hi[escaped] - state.lo[escaped]
                state.lo[escaped] = vals[escaped] - widths / 2.0
                state.hi[escaped] = vals[escaped] + widths / 2.0
                self.stats.record(MessageKind.UPDATE, n * self._hops(client))

    # ------------------------------------------------------------ query path

    def on_query(self, client: str, query: InnerProductQuery, now: float = 0.0) -> float:
        if not self.is_warm:
            raise RuntimeError("stream window not yet full; warm up before querying")
        state = self.clients[client]
        tolerances = per_index_tolerances(query)
        hops = self._hops(client)
        answer = 0.0
        self.last_query_hops = 0
        weights = dict(zip(query.indices, query.weights))
        for idx in query.indices:
            tol = tolerances[idx]
            tol_bin = int(min(tol, self.max_range))
            events = state.reads.setdefault(idx, deque(maxlen=EVENT_WINDOW))
            events.append((now, tol_bin))
            if tol >= state.width(idx):
                estimate = self.value_low + (state.lo[idx] + state.hi[idx]) / 2.0
            else:
                # Read miss: fetch the exact value plus a re-optimised width.
                # Per-item fetches run in parallel; latency is one round trip.
                self.stats.record(MessageKind.QUERY, hops)
                self.stats.record(MessageKind.RESPONSE, hops)
                self.last_query_hops = 2 * hops
                estimate = self.window[idx]
                k_star = self._optimise(events, now)
                centre = estimate - self.value_low
                state.lo[idx] = centre - k_star / 2.0
                state.hi[idx] = centre + k_star / 2.0
            answer += weights[idx] * estimate
        return answer

    def _optimise(self, events: Deque[Tuple[float, int]], now: float) -> int:
        read_rate = _rate(len(events), events[0][0] if events else now, now)
        write_rate = _rate(
            len(self._arrivals), self._arrivals[0] if self._arrivals else now, now
        )
        tols = np.array([t for __, t in events], dtype=np.int64)
        return optimal_refresh_width(
            tols, read_rate, write_rate, self.max_range, self.control_cost
        )

    # --------------------------------------------------------------- metrics

    def approximation_count(self) -> int:
        """O(M N): one interval per client per window item."""
        return len(self.clients) * self.window_size


def _rate(count: int, oldest: float, now: float) -> float:
    """Events per time unit over the observation span (guarded)."""
    if count <= 1:
        return 0.0
    span = max(now - oldest, 1e-9)
    return count / span
