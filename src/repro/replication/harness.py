"""Simulation harness for the replication experiments (Section 5).

Drives a :class:`~repro.replication.base.ReplicationProtocol` through the
discrete-event simulator: a periodic data task at the source (period
``T_d``), one periodic query task per client (period ``T_q``, random query
mode with uniformly drawn sizes, positions, and precisions), and a periodic
phase task (for SWAT-ASR's expansion/contraction tests).  Measurements start
after a warm-up interval, matching the paper's methodology.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from ..core.queries import InnerProductQuery
from ..data.workload import RandomWorkload
from ..metrics.error import GroundTruthWindow
from ..network.messages import MessageStats
from ..network.topology import Topology
from ..network.transport import Transport
from ..obs import causal as causal_mod
from ..obs import metrics as obs
from ..simulate.events import Simulator
from ..simulate.tasks import PeriodicTask
from .aps import AdaptivePrecision
from .asr import SwatAsr
from .base import ReplicationProtocol
from .divergence import DivergenceCaching

__all__ = [
    "ReplicationConfig",
    "ReplicationResult",
    "ReplicationDriver",
    "ReplicationRun",
    "run_replication",
    "run_replication_sharded",
    "make_protocol",
]

PROTOCOLS = ("SWAT-ASR", "DC", "APS")


class ReplicationDriver(Protocol):
    """What :func:`run_replication` needs from a protocol, structurally.

    Satisfied by every :class:`~repro.replication.base.ReplicationProtocol`
    subclass *and* by the actor-based
    :class:`~repro.replication.async_asr.AsyncSwatAsr`, which shares the
    callback surface without inheriting the base class (its messaging runs
    through a real transport rather than counted calls).
    """

    name: str
    topology: Topology
    window: GroundTruthWindow
    stats: MessageStats
    last_query_hops: int

    @property
    def is_warm(self) -> bool: ...

    def on_data(self, value: float, now: float = ...) -> None: ...

    def on_query(
        self, client: str, query: InnerProductQuery, now: float = ...
    ) -> float: ...

    def on_phase_end(self, now: float = ...) -> None: ...

    def approximation_count(self) -> int: ...


@dataclass
class _RunState:
    """Mutable measurement accumulators shared by the periodic tasks."""

    queries: int = 0
    arrivals: int = 0
    err_sum: float = 0.0
    hops_sum: int = 0
    measuring: bool = False


@dataclass
class ReplicationConfig:
    """Parameters of one replication simulation run.

    ``T_d`` and ``T_q`` are *periods* in virtual seconds (see DESIGN.md §3 on
    the paper's rate/period wording).  The stream array is cycled if the run
    needs more arrivals than it provides.
    """

    window_size: int = 32
    data_period: float = 1.0
    query_period: float = 1.0
    phase_period: float = 10.0
    warmup_time: float = 100.0
    measure_time: float = 1000.0
    precision: Tuple[float, float] = (5.0, 20.0)
    query_kind: str = "linear"
    max_query_length: Optional[int] = None
    value_range: Tuple[float, float] = (0.0, 100.0)
    seed: int = 0

    def __post_init__(self) -> None:
        if min(self.data_period, self.query_period, self.phase_period) <= 0:
            raise ValueError("periods must be positive")
        if self.measure_time <= 0:
            raise ValueError("measure_time must be positive")


@dataclass
class ReplicationResult:
    """Measured outcome of one run."""

    protocol: str
    total_messages: int
    by_kind: Dict[str, int]
    n_queries: int
    n_arrivals: int
    mean_abs_error: float
    approximations: int
    mean_query_hops: float = 0.0
    # Free-form extras; with observability on, ``meta["metrics"]`` holds the
    # run's measurement-phase registry snapshot (see repro.obs).
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def messages_per_query(self) -> float:
        return self.total_messages / max(self.n_queries, 1)

    def mean_query_latency(self, per_hop_seconds: float) -> float:
        """Derived response latency: round-trip hops times per-hop delay
        (0 hops = answered from the local cache)."""
        if per_hop_seconds < 0:
            raise ValueError("per_hop_seconds must be non-negative")
        return self.mean_query_hops * per_hop_seconds


def make_protocol(
    name: str,
    topology: Topology,
    window_size: int,
    value_range: Tuple[float, float] = (0.0, 100.0),
) -> ReplicationProtocol:
    """Instantiate a protocol by its figure-legend name."""
    if name == "SWAT-ASR":
        return SwatAsr(topology, window_size)
    if name == "DC":
        return DivergenceCaching(topology, window_size, value_range=value_range)
    if name == "APS":
        return AdaptivePrecision(topology, window_size, value_range=value_range)
    raise ValueError(f"unknown protocol {name!r}; expected one of {PROTOCOLS}")


def run_replication(
    protocol: ReplicationDriver,
    stream: np.ndarray,
    config: ReplicationConfig,
) -> ReplicationResult:
    """Run one simulation and return message/error measurements."""
    stream = np.asarray(stream, dtype=np.float64)
    if stream.size == 0:
        raise ValueError("stream must be non-empty")
    sim = Simulator()
    topo = protocol.topology
    state = _RunState()

    # Run-scoped metrics (created up front so even a query-free run exports
    # the series); observed only during the measurement phase so warm-up
    # traffic never leaks into reported numbers.
    obs_on = obs.ENABLED
    latency_hist = (
        obs.histogram("query.latency", protocol=protocol.name) if obs_on else None
    )
    hops_hist = (
        obs.histogram("query.hops", buckets=obs.COUNT_BUCKETS, protocol=protocol.name)
        if obs_on
        else None
    )

    # Ground-truth window cache: the exact window only changes on arrivals,
    # yet every query of every client re-copied it.  One snapshot per data
    # tick serves all queries issued between arrivals.
    cached_truth: Optional[np.ndarray] = None

    def current_truth_window() -> np.ndarray:
        nonlocal cached_truth
        if cached_truth is None:
            cached_truth = protocol.window.values_newest_first()
        return cached_truth

    def on_data(tick: int) -> None:
        nonlocal cached_truth
        cached_truth = None
        protocol.on_data(float(stream[tick % stream.size]), now=sim.now)
        state.arrivals += 1

    workloads = {
        client: RandomWorkload(
            config.window_size,
            kind=config.query_kind,
            max_length=config.max_query_length,
            precision_low=config.precision[0],
            precision_high=config.precision[1],
            seed=config.seed + 7919 * (i + 1),
        )
        for i, client in enumerate(topo.clients)
    }

    def query_action(client: str) -> Callable[[int], None]:
        def act(tick: int) -> None:
            if not protocol.is_warm:
                return
            query = workloads[client].next()
            if latency_hist is not None and hops_hist is not None and state.measuring:
                with latency_hist.time():
                    answer = protocol.on_query(client, query, now=sim.now)
                hops_hist.observe(protocol.last_query_hops)
            else:
                answer = protocol.on_query(client, query, now=sim.now)
            truth = query.evaluate(current_truth_window())
            state.queries += 1
            state.err_sum += abs(answer - truth)
            state.hops_sum += protocol.last_query_hops

        return act

    PeriodicTask(sim, config.data_period, on_data, start_at=0.0)
    fill_time = config.window_size * config.data_period
    for client in topo.clients:
        PeriodicTask(sim, config.query_period, query_action(client), start_at=fill_time)
    PeriodicTask(
        sim,
        config.phase_period,
        lambda tick: protocol.on_phase_end(now=sim.now),
        start_at=fill_time,
    )

    # Warm up, then reset counters and measure.  ``MessageStats.reset``
    # also rewinds the warm-up hops it mirrored into the metrics registry,
    # so the registry scope starts the measurement phase clean too.
    sim.run_until(fill_time + config.warmup_time)
    protocol.stats.reset()
    state.queries = 0
    state.err_sum = 0.0
    state.hops_sum = 0
    state.measuring = True
    baseline: Optional[dict] = obs.metrics_snapshot() if obs_on else None
    sim.run_until(fill_time + config.warmup_time + config.measure_time)

    meta: Dict[str, object] = {}
    if baseline is not None:
        # Everything the registry accrued during measurement only (warm-up
        # arrivals/messages excluded by construction).
        meta["metrics"] = obs.snapshot_delta(obs.metrics_snapshot(), baseline)

    # Fault-tolerance provenance: protocols running over a reliable transport
    # (a FaultPlan attached) report injected-fault and degradation totals so
    # results under chaos are auditable.  Totals are run-lifetime, not
    # measurement-scoped — a degraded answer during warm-up is still a fact
    # about the run.
    transport = getattr(protocol, "transport", None)
    if isinstance(transport, Transport) and transport.reliable:
        meta["faults"] = transport.fault_counters()
        degraded = getattr(protocol, "degraded_count", None)
        if callable(degraded):
            meta["degraded_answers"] = int(degraded())

    # Causal-tracing provenance: when the protocol carries a tracer, report
    # how much of the run it captured (dropped > 0 means the span cap
    # sampled some traces out; orphans > 0 means a broken propagation chain
    # and is asserted zero by the acceptance tests).
    causal = getattr(protocol, "causal", None)
    if isinstance(causal, causal_mod.CausalTracer):
        meta["trace"] = {
            "traces": len(causal.trace_ids()),
            "spans": len(causal),
            "dropped": causal.dropped,
            "orphans": len(causal.orphan_spans()),
        }

    n_queries = state.queries
    return ReplicationResult(
        protocol=protocol.name,
        total_messages=protocol.stats.total,
        by_kind=protocol.stats.snapshot(),
        n_queries=n_queries,
        n_arrivals=state.arrivals,
        mean_abs_error=state.err_sum / max(n_queries, 1),
        approximations=protocol.approximation_count(),
        mean_query_hops=state.hops_sum / max(n_queries, 1),
        meta=meta,
    )


@dataclass
class ReplicationRun:
    """One independent simulation for :func:`run_replication_sharded`.

    ``factory`` constructs the protocol *inside* the worker so no driver
    state is shared between shards; each run is the same deterministic
    simulation it would be standalone (seeds live in ``config``).
    """

    factory: Callable[[], ReplicationDriver]
    stream: np.ndarray
    config: ReplicationConfig


def run_replication_sharded(
    runs: Sequence[ReplicationRun],
    max_workers: Optional[int] = None,
) -> List[ReplicationResult]:
    """Run independent replication simulations across a thread pool.

    Parallelism is across *runs* (protocol sweeps, seed sweeps), never
    inside one event loop, so every run's message counts and errors are
    bit-identical to a standalone :func:`run_replication` call.

    The instrumented paths (metrics registry, causal tracer) are global and
    not thread-safe, so when either is enabled the runs execute
    sequentially — still through this API — and per-shard wall-clock
    metrics (``replication.shard.latency``/``replication.shard.runs``) are
    recorded from the calling thread.  With instrumentation off, shards
    genuinely overlap.
    """
    if not runs:
        return []
    instrumented = obs.ENABLED or causal_mod.current_causal() is not None
    workers = max_workers if max_workers is not None else min(4, len(runs))
    workers = max(1, min(int(workers), len(runs)))
    if instrumented:
        workers = 1

    def execute(run: ReplicationRun) -> Tuple[ReplicationResult, float, float]:
        start = time.perf_counter()
        result = run_replication(run.factory(), run.stream, run.config)
        return result, start, time.perf_counter()

    if workers == 1:
        collected = [execute(run) for run in runs]
    else:
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="replication-shard"
        ) as pool:
            collected = [f.result() for f in [pool.submit(execute, r) for r in runs]]
    results: List[ReplicationResult] = []
    for i, (result, start, end) in enumerate(collected):
        result.meta["shard"] = i
        result.meta["wall_seconds"] = end - start
        if obs.ENABLED:
            obs.counter("replication.shard.runs", shard=i).inc()
            obs.histogram("replication.shard.latency", shard=i).observe(end - start)
        results.append(result)
    return results
