"""SWAT-ASR: adaptive stream replication (Section 3).

The sliding window is partitioned into the ``log N`` directory segments of
Table 1, and each segment runs an independent ADR-style replication scheme
over the spanning tree:

* the *source* always holds the (exact) range of every segment and pushes a
  range update to subscribers only when the fresh range is **not enclosed**
  by the previously stored one (Figure 8(a));
* a *query* is decomposed into per-segment sub-queries; a site satisfies the
  query when the total weighted precision offered by its cached ranges is
  within the query's delta, otherwise the whole query travels one hop toward
  the source (one query message and one response per hop);
* at each *phase end* (Figure 8(b)) replication fringes contract where
  writes outran local reads, and schemes expand toward children whose reads
  outran writes.

Precision is monotone: the range cached for a segment never gets tighter as
one descends the tree, exactly as in the Section 3 walk-through.
"""

from __future__ import annotations

import logging
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .. import contracts
from ..core.coverage import CoverageError
from ..core.queries import InnerProductQuery
from ..core.swat import Swat
from ..network.directory import Directory, DirectoryRow, Segment, SegmentPlanCache
from ..network.messages import MessageKind
from ..network.topology import Topology
from ..obs import causal as causal_mod
from ..obs.causal import Span, TraceContext
from .base import ReplicationProtocol

__all__ = ["SwatAsr"]

logger = logging.getLogger("repro.replication.asr")


class SwatAsr(ReplicationProtocol):
    """The paper's SWAT-ASR protocol over a spanning tree.

    Parameters
    ----------
    topology:
        Spanning tree with the stream source at the root.
    window_size:
        Sliding window size ``N`` (power of two).
    """

    name = "SWAT-ASR"

    def __init__(
        self,
        topology: Topology,
        window_size: int,
        use_summary_ranges: bool = False,
        check_invariants: Optional[bool] = None,
    ) -> None:
        """``use_summary_ranges=True`` derives segment ranges from a
        deviation-tracked 1-coefficient SWAT at the source — "the central
        site which maintains summary of the stream" — instead of exact
        min/max over the raw window.  Summary ranges are certified supersets
        (average ± max deviation), so answers stay within precision; they are
        somewhat wider, costing extra forwarding (quantified in tests).

        The source maintains its SWAT either way (the paper's central site
        does by definition, and it feeds the ``swat.*`` metrics of
        :mod:`repro.obs`); only range derivation depends on the flag."""
        super().__init__(topology, window_size)
        self.sites: Dict[str, Directory] = {
            node: Directory(window_size) for node in topology.nodes
        }
        self._segments = self.sites[topology.root].segments
        # Segments are identical across sites (same window size), so one
        # grouping cache serves every site's query decomposition.
        self._segment_plans = SegmentPlanCache(self.sites[topology.root])
        self.use_summary_ranges = bool(use_summary_ranges)
        self._check_invariants = contracts.resolve_check_flag(check_invariants)
        self._summary = Swat(
            window_size,
            track_deviation=use_summary_ranges,
            check_invariants=self._check_invariants,
        )

    # ------------------------------------------------------------- data path

    def on_data(self, value: float, now: float = 0.0) -> None:
        # The source's summary tree sees every arrival from the start, so it
        # is warm by the time the window fills and propagation begins.
        self._summary.update(float(value))
        super().on_data(value, now)

    def _propagate(self, value: float, now: float) -> None:
        """Refresh every segment range at the source; push non-enclosed changes."""
        root_span: Optional[Span] = None
        ctx: Optional[TraceContext] = None
        if self.causal is not None:
            root_span = self.causal.start_span(
                "update", at=now, site=self.topology.root, protocol=self.name
            )
            ctx = root_span.context
        for seg in self._segments:
            rng = self._segment_range(seg)
            self._apply_update(self.topology.root, seg, rng, at=now, ctx=ctx)
        if root_span is not None and self.causal is not None:
            root_span.finish(now)
            causal_mod.record_update_trace(self.causal, root_span, self.name)
        if self._check_invariants:
            contracts.check_asr(self)

    def _traced_hop(
        self,
        kind: str,
        src: str,
        dst: str,
        at: float,
        ctx: Optional[TraceContext],
    ) -> Optional[TraceContext]:
        """Record one counted-call hop as a zero-duration span.

        The synchronous model has no transmission delay, so the span opens
        and closes at ``at``; what the trace captures is the *structure* —
        which site pushed or forwarded to which, in what causal order."""
        if self.causal is None or ctx is None:
            return ctx
        span = self.causal.start_span(
            f"hop:{kind}",
            at=at,
            site=src,
            parent=ctx,
            dst=dst,
            category=MessageKind.category(kind),
        )
        span.finish(at, status="delivered")
        return span.context

    def _segment_range(self, seg: Segment) -> Tuple[float, float]:
        if not self.use_summary_ranges:
            return self.window.segment_range(seg.newest, seg.oldest)
        # Range from the summary alone: for each node covering part of the
        # segment, [avg - deviation, avg + deviation] encloses its true
        # values, so the union of those intervals encloses the segment.
        try:
            cover = self._summary.cover(list(seg.indices()))
        except CoverageError:
            # A few nodes may still be unfilled right after the window first
            # fills; the source always has the raw window to fall back on.
            return self.window.segment_range(seg.newest, seg.oldest)
        lo, hi = float("inf"), float("-inf")
        for node in cover.assignments:
            avg = node.average()
            dev = node.deviation if node.deviation is not None else 0.0
            lo = min(lo, avg - dev)
            hi = max(hi, avg + dev)
        return (lo, hi)

    def _apply_update(
        self,
        node: str,
        seg: Segment,
        rng: Tuple[float, float],
        at: float = 0.0,
        ctx: Optional[TraceContext] = None,
    ) -> None:
        """Figure 8(a), update branch, at ``node`` (then cascading down)."""
        row = self.sites[node].row(seg)
        was_cached = row.is_cached
        enclosed = row.encloses(rng)
        row.approx = rng
        if was_cached and not enclosed:
            row.write_count += 1
            # Sorted: subscriber sets are hash-ordered, and the emission
            # order of cascaded UPDATEs must not depend on PYTHONHASHSEED
            # (REP009).
            for child in sorted(row.subscribed):
                self.stats.record(MessageKind.UPDATE)
                hop_ctx = self._traced_hop(MessageKind.UPDATE, node, child, at, ctx)
                self._apply_update(child, seg, rng, at=at, ctx=hop_ctx)

    # ------------------------------------------------------------ query path

    def on_query(self, client: str, query: InnerProductQuery, now: float = 0.0) -> float:
        """Answer a query issued at ``client`` (Figure 8(a), query branch).

        The query is decomposed into per-segment sub-queries.  A site
        satisfies the query when the *total* weighted precision offered by
        its cached ranges — ``sum_i W[i] * width(segment(i))``, with width
        as the offered precision, exactly as the Section 3 walk-through
        compares ``40 - 30 = 10`` against the required ``8`` — is within the
        query's ``delta``.  Otherwise the whole query travels one hop toward
        the source (one query message and one response per hop).
        """
        if client not in self.topology:
            raise KeyError(f"unknown site {client!r}")
        if not self.is_warm:
            raise RuntimeError("stream window not yet full; warm up before querying")
        by_segment = self._segment_plans.group(query.indices)
        weights = dict(zip(query.indices, query.weights))
        before = self.stats.count(MessageKind.QUERY)
        root_span: Optional[Span] = None
        ctx: Optional[TraceContext] = None
        if self.causal is not None:
            root_span = self.causal.start_span(
                "query", at=now, site=client, protocol=self.name
            )
            ctx = root_span.context
        estimates = self._query_at(
            client, query, by_segment, weights, from_child=None, at=now, ctx=ctx
        )
        # One query message per hop up and one response per hop back.
        self.last_query_hops = 2 * (self.stats.count(MessageKind.QUERY) - before)
        if root_span is not None and self.causal is not None:
            root_span.finish(now, hops=self.last_query_hops)
            causal_mod.record_query_trace(self.causal, root_span, self.name)
        return sum(weights[i] * estimates[i] for i in query.indices)

    def _query_at(
        self,
        node: str,
        query: InnerProductQuery,
        by_segment: Mapping[Segment, Sequence[int]],
        weights: Dict[int, float],
        from_child: Optional[str],
        at: float = 0.0,
        ctx: Optional[TraceContext] = None,
    ) -> Dict[int, float]:
        directory = self.sites[node]
        if node == self.topology.root:
            # The source answers exactly from the stream itself.
            for seg in by_segment:
                self._count_read(directory.row(seg), from_child)
            return {idx: self.window[idx] for idx in query.indices}
        offered = 0.0
        for seg, indices in by_segment.items():
            width = directory.row(seg).width  # inf when not cached
            offered += sum(weights[i] for i in indices) * width
        if offered <= query.precision:
            estimates: Dict[int, float] = {}
            for seg, indices in by_segment.items():
                row = directory.row(seg)
                self._count_read(row, from_child)
                for idx in indices:
                    estimates[idx] = row.midpoint
            return estimates
        parent = self.topology.parent(node)
        assert parent is not None  # the source always satisfies
        self.stats.record(MessageKind.QUERY)
        hop_ctx = self._traced_hop(MessageKind.QUERY, node, parent, at, ctx)
        estimates = self._query_at(
            parent, query, by_segment, weights, from_child=node, at=at, ctx=hop_ctx
        )
        self.stats.record(MessageKind.RESPONSE)
        # The response chains under the forward hop that provoked it, so the
        # trace reads request-then-response exactly as the async runtime's.
        self._traced_hop(MessageKind.RESPONSE, parent, node, at, hop_ctx)
        return estimates

    @staticmethod
    def _count_read(row: DirectoryRow, from_child: Optional[str]) -> None:
        if from_child is None:
            row.local_reads += 1
        else:
            row.note_read(from_child)

    # ------------------------------------------------------------- phase end

    def on_phase_end(self, now: float = 0.0) -> None:
        """Figure 8(b): contraction then expansion tests, then counter reset."""
        root = self.topology.root
        phase_span: Optional[Span] = None
        ctx: Optional[TraceContext] = None
        if self.causal is not None:
            phase_span = self.causal.start_span(
                "phase", at=now, site=root, protocol=self.name
            )
            ctx = phase_span.context
        # Contraction, deepest sites first, so a chain can shrink in one phase.
        clients = sorted(self.topology.clients, key=self.topology.depth, reverse=True)
        for node in clients:
            directory = self.sites[node]
            for seg in self._segments:
                row = directory.row(seg)
                if row.is_cached and not row.subscribed:  # R-fringe for seg
                    if row.local_reads < row.write_count:
                        logger.debug(
                            "phase end t=%g: %s contracts segment %s "
                            "(reads=%d < writes=%d)",
                            now, node, seg, row.local_reads, row.write_count,
                        )
                        row.approx = None
                        self.stats.record(MessageKind.UNSUBSCRIBE)
                        parent = self.topology.parent(node)
                        assert parent is not None
                        self._traced_hop(MessageKind.UNSUBSCRIBE, node, parent, now, ctx)
                        self.sites[parent].row(seg).subscribed.discard(node)
        # Expansion at every site still holding a copy (the source always does).
        for node in self.topology.nodes:
            directory = self.sites[node]
            for seg in self._segments:
                row = directory.row(seg)
                if node != root and not row.is_cached:
                    row.interested.clear()
                    continue
                # Sorted: iteration feeds message emission; set order is
                # hash order and must not leak into the trace (REP009).
                for v in sorted(row.subscribed):
                    if row.write_count < row.read_counts.get(v, 0):
                        # Refresh a subscriber whose cached range proved too wide.
                        self.stats.record(MessageKind.UPDATE)
                        hop_ctx = self._traced_hop(MessageKind.UPDATE, node, v, now, ctx)
                        self._apply_update(v, seg, row.approx, at=now, ctx=hop_ctx)
                for v in sorted(row.interested):
                    row.interested.discard(v)
                    if row.write_count < row.read_counts.get(v, 0):
                        logger.debug(
                            "phase end t=%g: scheme for segment %s expands "
                            "%s -> %s (reads=%d > writes=%d)",
                            now, seg, node, v,
                            row.read_counts.get(v, 0), row.write_count,
                        )
                        row.subscribed.add(v)
                        self.stats.record(MessageKind.INSERT)
                        self._traced_hop(MessageKind.INSERT, node, v, now, ctx)
                        self.sites[v].row(seg).approx = row.approx
        if phase_span is not None:
            phase_span.finish(now)
        for node in self.topology.nodes:
            for seg in self._segments:
                self.sites[node].row(seg).reset_counts()
        if self._check_invariants:
            contracts.check_asr(self)

    # --------------------------------------------------------------- metrics

    def approximation_count(self) -> int:
        """Total cached approximations across client sites plus the source's."""
        total = sum(
            self.sites[node].cached_count() for node in self.topology.clients
        )
        return total + len(self._segments)  # the source always holds them all

    def precision_is_monotone(self) -> bool:
        """Invariant check: widths never shrink as one descends the tree."""
        for node in self.topology.clients:
            parent = self.topology.parent(node)
            for seg in self._segments:
                child_row = self.sites[node].row(seg)
                parent_row = self.sites[parent].row(seg)
                if child_row.is_cached:
                    if parent_row.width > child_row.width + 1e-9:
                        return False
        return True
