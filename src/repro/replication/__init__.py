"""Replication layer: SWAT-ASR plus the two competing caching techniques."""

from .adr import AdrObject
from .aps import AdaptivePrecision
from .asr import SwatAsr
from .async_asr import DEGRADED_WIDEN_FACTOR, AsyncSwatAsr, QueryOutcome
from .base import ReplicationProtocol, uniform_tolerance
from .divergence import EVENT_WINDOW, DivergenceCaching, optimal_refresh_width
from .harness import (
    PROTOCOLS,
    ReplicationConfig,
    ReplicationResult,
    make_protocol,
    run_replication,
)

__all__ = [
    "AdaptivePrecision",
    "AdrObject",
    "SwatAsr",
    "AsyncSwatAsr",
    "QueryOutcome",
    "DEGRADED_WIDEN_FACTOR",
    "ReplicationProtocol",
    "uniform_tolerance",
    "DivergenceCaching",
    "optimal_refresh_width",
    "EVENT_WINDOW",
    "ReplicationConfig",
    "ReplicationResult",
    "run_replication",
    "make_protocol",
    "PROTOCOLS",
]
