"""The general Adaptive Data Replication algorithm (Wolfson, Jajodia &
Huang, TODS 1997) — the algorithmic basis of SWAT-ASR (Section 3).

SWAT-ASR specialises ADR: the source is always in the replication scheme and
only the source writes, so the *switch* test disappears.  This module
implements the general, single-object algorithm on a tree — reads and writes
may originate anywhere, and the replication scheme ``R`` (a connected
subtree) expands toward readers, contracts away from writers, and can switch
wholesale to a neighbour when it is a singleton.  It is exercised directly
by tests/benchmarks and serves as the reference against which the
SWAT-ASR specialisation was written.

Cost model (the ADR paper's): every message travelling one tree edge costs
one unit.  A read travels from its origin to the closest replica; a write
travels to ``R`` and then floods every edge of ``R``'s subtree.
"""

from __future__ import annotations

import logging
from typing import Dict, List, Optional, Set

from ..network.topology import Topology
from ..obs import causal as causal_mod
from ..obs.causal import Span, TraceContext

__all__ = ["AdrObject"]

logger = logging.getLogger("repro.replication.adr")


class _NodeCounters:
    """Per-phase traffic counters at one replica node, per adjacent edge."""

    __slots__ = ("reads", "writes", "local_reads", "local_writes")

    def __init__(self) -> None:
        self.reads: Dict[str, int] = {}
        self.writes: Dict[str, int] = {}
        self.local_reads = 0
        self.local_writes = 0

    def reset(self) -> None:
        self.reads.clear()
        self.writes.clear()
        self.local_reads = 0
        self.local_writes = 0

    def total_writes(self) -> int:
        return self.local_writes + sum(self.writes.values())

    def writes_except(self, neighbour: str) -> int:
        return self.total_writes() - self.writes.get(neighbour, 0)


class AdrObject:
    """A single replicated object under ADR on a tree.

    Parameters
    ----------
    topology:
        The tree of sites (any node may read or write).
    initial_replicas:
        Initial replication scheme; must induce a connected subtree.
        Defaults to just the tree root.
    """

    def __init__(self, topology: Topology, initial_replicas: Optional[Set[str]] = None) -> None:
        self.topology = topology
        if initial_replicas is None:
            replicas = {topology.root}
        else:
            replicas = set(initial_replicas)
        self._check_connected(replicas)
        self.replicas: Set[str] = replicas
        self.value: float = 0.0
        self.messages = 0
        self._counters: Dict[str, _NodeCounters] = {
            n: _NodeCounters() for n in topology.nodes
        }
        # Ambient causal tracer (None when tracing is off): reads and writes
        # become span trees whose hop spans mirror the counted tree edges.
        self.causal = causal_mod.current_causal()

    def _traced_hop(
        self,
        name: str,
        src: str,
        dst: str,
        at: float,
        ctx: Optional[TraceContext],
    ) -> Optional[TraceContext]:
        """One counted tree-edge message as a zero-duration hop span."""
        if self.causal is None or ctx is None:
            return ctx
        span = self.causal.start_span(name, at=at, site=src, parent=ctx, dst=dst)
        span.finish(at, status="delivered")
        return span.context

    # ------------------------------------------------------------- structure

    def _check_connected(self, replicas: Set[str]) -> None:
        if not replicas:
            raise ValueError("replication scheme must be non-empty")
        unknown = replicas - set(self.topology.nodes)
        if unknown:
            raise ValueError(f"unknown sites {sorted(unknown)}")
        # Connected iff exactly one member has its parent outside the set.
        heads = [n for n in replicas if self.topology.parent(n) not in replicas]
        if len(heads) != 1:
            raise ValueError(f"replication scheme {sorted(replicas)} is not connected")

    def _neighbours(self, node: str) -> List[str]:
        out = list(self.topology.children(node))
        parent = self.topology.parent(node)
        if parent is not None:
            out.append(parent)
        return out

    def _tree_path(self, a: str, b: str) -> List[str]:
        """The unique tree path from ``a`` to ``b`` (inclusive both ends)."""
        up_a = self.topology.path_to_root(a)
        up_b = self.topology.path_to_root(b)
        in_b = set(up_b)
        lca = next(n for n in up_a if n in in_b)
        head = up_a[: up_a.index(lca) + 1]
        tail = up_b[: up_b.index(lca)]
        return head + tail[::-1]

    def _path_to_replica(self, node: str) -> List[str]:
        """Nodes from ``node`` to the *closest* replica (inclusive both ends).

        ``R`` is connected but need not contain ``node``'s ancestors (after a
        switch it may sit in a sibling subtree), so route to the nearest
        member along unique tree paths.
        """
        if node in self.replicas:
            return [node]
        best: Optional[List[str]] = None
        for replica in self.replicas:
            path = self._tree_path(node, replica)
            if best is None or len(path) < len(best):
                best = path
        assert best is not None  # the replication scheme is never empty
        return best

    @property
    def is_singleton(self) -> bool:
        return len(self.replicas) == 1

    def r_fringe(self) -> Set[str]:
        """Replica nodes with at most one replica neighbour (leaves of R)."""
        out: Set[str] = set()
        for node in self.replicas:
            r_neigh = [v for v in self._neighbours(node) if v in self.replicas]
            if len(r_neigh) <= 1 and len(self.replicas) > 1:
                out.add(node)
        return out

    # --------------------------------------------------------------- traffic

    def read(self, origin: str, at: float = 0.0) -> float:
        """A read at ``origin``: travels to the closest replica."""
        path = self._path_to_replica(origin)
        root_span: Optional[Span] = None
        ctx: Optional[TraceContext] = None
        if self.causal is not None:
            root_span = self.causal.start_span(
                "read", at=at, site=origin, protocol="ADR"
            )
            ctx = root_span.context
            for src, dst in zip(path, path[1:]):
                ctx = self._traced_hop("hop:query", src, dst, at, ctx)
        self.messages += len(path) - 1
        target = path[-1]
        counters = self._counters[target]
        if len(path) == 1:
            counters.local_reads += 1
        else:
            counters.reads[path[-2]] = counters.reads.get(path[-2], 0) + 1
        if root_span is not None:
            root_span.finish(at, served_by=target)
        return self.value

    def write(self, origin: str, value: float, at: float = 0.0) -> None:
        """A write at ``origin``: reaches R, then updates every replica."""
        self.value = float(value)
        path = self._path_to_replica(origin)
        root_span: Optional[Span] = None
        ctx: Optional[TraceContext] = None
        if self.causal is not None:
            root_span = self.causal.start_span(
                "write", at=at, site=origin, protocol="ADR"
            )
            ctx = root_span.context
            for src, dst in zip(path, path[1:]):
                ctx = self._traced_hop("hop:update", src, dst, at, ctx)
        self.messages += len(path) - 1
        entry = path[-1]
        entry_counters = self._counters[entry]
        if len(path) == 1:
            entry_counters.local_writes += 1
        else:
            entry_counters.writes[path[-2]] = entry_counters.writes.get(path[-2], 0) + 1
        # Flood R from the entry point; each R edge carries one message and
        # each receiving replica counts a write from the edge it arrived on.
        # The flood's hop spans branch from the context the envelope arrived
        # under, so the trace mirrors the flood tree.
        visited = {entry}
        flood_ctx: Dict[str, Optional[TraceContext]] = {entry: ctx}
        frontier = [entry]
        while frontier:
            node = frontier.pop()
            for v in self._neighbours(node):
                if v in self.replicas and v not in visited:
                    self.messages += 1
                    flood_ctx[v] = self._traced_hop(
                        "hop:update", node, v, at, flood_ctx[node]
                    )
                    c = self._counters[v]
                    c.writes[node] = c.writes.get(node, 0) + 1
                    visited.add(v)
                    frontier.append(v)
        if root_span is not None:
            root_span.finish(at, replicas=len(self.replicas))

    # ------------------------------------------------------------- phase end

    def end_phase(self) -> None:
        """Run the expansion, contraction, and switch tests; reset counters.

        Tests follow the ADR paper: an R-neighbour node expands to a
        non-replica neighbour whose reads beat all other writes; an R-fringe
        node contracts when remote writes beat the reads it serves; a
        singleton may switch to the neighbour that dominates its traffic.
        """
        joins: Set[str] = set()
        # Expansion.
        for node in list(self.replicas):
            counters = self._counters[node]
            for v in self._neighbours(node):
                if v in self.replicas:
                    continue
                reads_from_v = counters.reads.get(v, 0)
                writes_other = counters.writes_except(v)
                if reads_from_v > writes_other:
                    logger.debug(
                        "ADR expansion: %s joins R via %s (reads=%d > other writes=%d)",
                        v, node, reads_from_v, writes_other,
                    )
                    joins.add(v)
        self.replicas |= joins
        # Contraction (not for nodes that just joined).
        exits: Set[str] = set()
        for node in self.r_fringe():
            if node in joins:
                continue
            counters = self._counters[node]
            served_reads = counters.local_reads + sum(counters.reads.values())
            r_neigh = [v for v in self._neighbours(node) if v in self.replicas and v not in exits]
            remote_writes = sum(counters.writes.get(v, 0) for v in r_neigh)
            if served_reads < remote_writes and len(self.replicas - exits) > 1:
                logger.debug(
                    "ADR contraction: %s leaves R (served reads=%d < remote writes=%d)",
                    node, served_reads, remote_writes,
                )
                exits.add(node)
        self.replicas -= exits
        # Switch (singleton only).
        if self.is_singleton and not joins and not exits:
            (node,) = self.replicas
            counters = self._counters[node]
            for v in self._neighbours(node):
                traffic_v = counters.writes.get(v, 0) + counters.reads.get(v, 0)
                other = (
                    counters.total_writes()
                    + counters.local_reads
                    + sum(counters.reads.values())
                    - traffic_v
                )
                if counters.writes.get(v, 0) > other:
                    logger.debug(
                        "ADR switch: singleton %s hands the object to %s "
                        "(writes=%d > other traffic=%d)",
                        node, v, counters.writes.get(v, 0), other,
                    )
                    self.replicas = {v}
                    self.messages += 1  # ship the object to v
                    break
        self._check_connected(self.replicas)
        for c in self._counters.values():
            c.reset()
