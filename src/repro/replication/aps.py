"""Adaptive Precision Setting (Olston, Widom & Loo; Section 4.2).

Caches an interval ``[L, H]`` per client per window item:

* **value-initiated refresh** — when a write moves the value outside the
  cached interval, the server ships a re-centred interval *enlarged* by
  ``(1 + alpha)``;
* **query-initiated refresh** — when a read's precision requirement beats
  the cached width, the query goes to the server, which ships a re-centred
  interval *shrunk* by ``(1 + alpha)``.

The paper runs it with the recommended settings ``alpha = 1``,
``tau_inf = inf``, ``tau_0 = 2``, ``p = 1``: widths double under write
pressure and halve under read pressure; widths below ``tau_0`` snap to exact
caching, and growth from an exact cache restarts at ``tau_0`` (the interval
must widen for the scheme to adapt, per the paper's description of APS
"choosing bigger intervals that approach the upper threshold").
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..core.queries import InnerProductQuery
from ..network.messages import MessageKind
from ..network.topology import Topology
from ..obs import causal as causal_mod
from ..obs.causal import Span, TraceContext
from .base import ReplicationProtocol, per_index_tolerances

__all__ = ["AdaptivePrecision"]


class AdaptivePrecision(ReplicationProtocol):
    """APS over a spanning tree, one cached interval per window item."""

    name = "APS"

    def __init__(
        self,
        topology: Topology,
        window_size: int,
        value_range: Tuple[float, float] = (0.0, 100.0),
        alpha: float = 1.0,
        tau_0: float = 2.0,
        tau_inf: float = float("inf"),
    ) -> None:
        super().__init__(topology, window_size)
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if tau_0 < 0 or tau_inf < tau_0:
            raise ValueError("need 0 <= tau_0 <= tau_inf")
        lo, hi = value_range
        if hi <= lo:
            raise ValueError("value_range must be non-degenerate")
        self.alpha = alpha
        self.tau_0 = tau_0
        self.tau_inf = tau_inf
        self.value_low = lo
        self.max_range = hi - lo
        # Per client: interval bounds per item.  Width == max_range behaves
        # like an uncached item (no write ever escapes, tight reads miss).
        self.lo: Dict[str, np.ndarray] = {}
        self.hi: Dict[str, np.ndarray] = {}
        for c in topology.clients:
            self.lo[c] = np.zeros(window_size, dtype=np.float64)
            self.hi[c] = np.full(window_size, self.max_range, dtype=np.float64)

    # ------------------------------------------------------------- data path

    def _propagate(self, value: float, now: float) -> None:
        vals = self.window.values_newest_first() - self.value_low
        root_span: Optional[Span] = None
        ctx: Optional[TraceContext] = None
        for client in self.topology.clients:
            lo, hi = self.lo[client], self.hi[client]
            escaped = (vals < lo) | (vals > hi)
            n = int(np.count_nonzero(escaped))
            if n:
                widths = hi[escaped] - lo[escaped]
                new_widths = np.maximum(widths * (1.0 + self.alpha), self.tau_0)
                new_widths = np.minimum(new_widths, self.tau_inf)
                new_widths = np.minimum(new_widths, self.max_range)
                lo[escaped] = vals[escaped] - new_widths / 2.0
                hi[escaped] = vals[escaped] + new_widths / 2.0
                hops = self._hops(client)
                self.stats.record(MessageKind.UPDATE, n * hops)
                if self.causal is not None:
                    # One value-initiated refresh trace per arrival; each
                    # client's refresh batch is a single logical hop span
                    # annotated with its item count and tree distance.
                    if root_span is None:
                        root_span = self.causal.start_span(
                            "update", at=now, site=self.topology.root,
                            protocol=self.name,
                        )
                        ctx = root_span.context
                    self.causal.start_span(
                        f"hop:{MessageKind.UPDATE}", at=now,
                        site=self.topology.root, parent=ctx, dst=client,
                        items=n, hops=hops,
                        category=MessageKind.category(MessageKind.UPDATE),
                    ).finish(now, status="delivered")
        if root_span is not None and self.causal is not None:
            root_span.finish(now)
            causal_mod.record_update_trace(self.causal, root_span, self.name)

    # ------------------------------------------------------------ query path

    def on_query(self, client: str, query: InnerProductQuery, now: float = 0.0) -> float:
        if not self.is_warm:
            raise RuntimeError("stream window not yet full; warm up before querying")
        tolerances = per_index_tolerances(query)
        lo, hi = self.lo[client], self.hi[client]
        hops = self._hops(client)
        answer = 0.0
        self.last_query_hops = 0
        weights = dict(zip(query.indices, query.weights))
        root_span: Optional[Span] = None
        ctx: Optional[TraceContext] = None
        if self.causal is not None:
            root_span = self.causal.start_span(
                "query", at=now, site=client, protocol=self.name
            )
            ctx = root_span.context
        for idx in query.indices:
            width = hi[idx] - lo[idx]
            if width <= tolerances[idx]:
                estimate = self.value_low + (lo[idx] + hi[idx]) / 2.0
            else:
                # Query-initiated refresh: shrink around the exact value.
                # Per-item fetches run in parallel; latency is one round trip.
                self.stats.record(MessageKind.QUERY, hops)
                self.stats.record(MessageKind.RESPONSE, hops)
                self.last_query_hops = 2 * hops
                if self.causal is not None and ctx is not None:
                    fwd = self.causal.start_span(
                        f"hop:{MessageKind.QUERY}", at=now, site=client,
                        parent=ctx, dst=self.topology.root, item=idx, hops=hops,
                        category=MessageKind.category(MessageKind.QUERY),
                    ).finish(now, status="delivered")
                    self.causal.start_span(
                        f"hop:{MessageKind.RESPONSE}", at=now,
                        site=self.topology.root, parent=fwd.context, dst=client,
                        item=idx, hops=hops,
                        category=MessageKind.category(MessageKind.RESPONSE),
                    ).finish(now, status="delivered")
                estimate = self.window[idx]
                new_width = width / (1.0 + self.alpha)
                if new_width < self.tau_0:
                    new_width = 0.0  # exact caching
                centre = estimate - self.value_low
                lo[idx] = centre - new_width / 2.0
                hi[idx] = centre + new_width / 2.0
            answer += weights[idx] * estimate
        if root_span is not None and self.causal is not None:
            root_span.finish(now, hops=self.last_query_hops)
            causal_mod.record_query_trace(self.causal, root_span, self.name)
        return answer

    # --------------------------------------------------------------- metrics

    def approximation_count(self) -> int:
        """O(M N): one interval per client per window item."""
        return len(self.topology.clients) * self.window_size
