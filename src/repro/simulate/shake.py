"""Dynamic determinism sanitizer: race detection + schedule perturbation.

The repo's correctness claims (exactly-once dispatch, precision
monotonicity, degraded-answer staleness) assume the discrete-event
simulation is a *function of its seeds* — that no protocol handler's
outcome depends on the incidental order in which same-timestamp events
happen to execute.  This module checks that claim at runtime, two ways:

**Race detection** (:class:`RaceDetector`).  Instrumented shared-state
accesses (:func:`note_read` / :func:`note_write`, guarded by the
module-level :data:`DETECTOR` switch, so the uninstrumented hot path pays
one global read) are tagged with the executing event's id and virtual
timestamp.  Two accesses to the same ``(owner, attribute, key)`` slot at
the same timestamp from different events, at least one a write, are a
**same-timestamp race** — the slot's final value depends on tie-break
order — unless one event is a transitive scheduling ancestor of the other
(a causal chain is ordered by construction).  Accesses from driver code
running between events are sequential and never conflict.

**Schedule perturbation** (:func:`run_shake`, the ``repro shake`` CLI).
The chaos scenario of PR 4/5 (binary tree, seeded drop/duplication/jitter
fault plan, one interior-site crash) is replayed ``K + 1`` times: once
with the simulator's FIFO tie-break, then under ``K`` seeded random
permutations of same-timestamp event order
(:class:`~repro.simulate.events.Simulator` ``tiebreak=``).  Every run's
observable outcome — directory state, query outcomes, message statistics,
fault counters, and the causal span-tree *topology* — is fingerprinted
and must be bit-identical.  A divergence is minimized to the seed, the
offending permutation, and the first divergent fingerprint component
(see ``docs/static-analysis.md``, "Determinism sanitizer", for how to
read a report).

The scenario deliberately uses positive latency and jitter: fault rolls
are keyed by message identity (:mod:`repro.network.faults`), so distinct
messages land at distinct real-valued times and the only same-timestamp
batches left are causal chains — any surviving divergence is a genuine
order bug, not scenario noise.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from .events import Simulator

__all__ = [
    "DETECTOR",
    "RaceDetector",
    "Conflict",
    "note_read",
    "note_write",
    "seeded_tiebreak",
    "run_shake",
    "format_shake_report",
]

#: Process-wide race-detector switch.  ``None`` (the default) keeps every
#: instrumented access at a single global load; install one around a run
#: with :meth:`RaceDetector.install` / :meth:`RaceDetector.uninstall`.
DETECTOR: Optional["RaceDetector"] = None

#: Keep at most this many distinct conflicts per run (the counter keeps
#: counting; the report stays bounded).
MAX_CONFLICTS = 200


def note_read(owner: str, attr: str, key: Hashable = None) -> None:
    """Report a read of shared slot ``(owner, attr, key)`` to the detector.

    Call sites guard with ``if shake.DETECTOR is not None`` so the
    uninstrumented path costs one global load and a branch.
    """
    det = DETECTOR
    if det is not None:
        det.note("read", owner, attr, key)


def note_write(owner: str, attr: str, key: Hashable = None) -> None:
    """Report a write (or read-modify-write) of a shared slot."""
    det = DETECTOR
    if det is not None:
        det.note("write", owner, attr, key)


@dataclass(frozen=True)
class Conflict:
    """One same-timestamp race: two causally-unordered events touched the
    same shared slot, at least one writing."""

    when: float
    owner: str
    attr: str
    key: str
    first_event: str
    first_mode: str
    second_event: str
    second_mode: str

    def summary(self) -> Dict[str, Any]:
        return {
            "when": self.when,
            "slot": f"{self.owner}.{self.attr}[{self.key}]",
            "first": f"{self.first_mode} by {self.first_event}",
            "second": f"{self.second_mode} by {self.second_event}",
        }


class _Access:
    __slots__ = ("event", "mode")

    def __init__(self, event: int, mode: str) -> None:
        self.event = event
        self.mode = mode


class RaceDetector:
    """Event-attributed shared-state access logger (a Simulator probe).

    Tracks the scheduling parent of every executed event so that a causal
    chain — event A scheduled event B (possibly transitively) at the same
    virtual instant — is recognized as ordered and excused.  Only accesses
    made *while an event executes* participate; driver code between events
    runs sequentially by construction.
    """

    def __init__(self) -> None:
        self._parents: Dict[int, Optional[int]] = {}
        self._labels: Dict[int, str] = {}
        self._now = float("-inf")
        self._current: Optional[int] = None
        #: (owner, attr, key) -> accesses at the current timestamp.
        self._slots: Dict[Tuple[str, str, Hashable], List[_Access]] = {}
        self.conflicts: List[Conflict] = []
        self.conflict_count = 0
        self._reported: set = set()

    # ------------------------------------------------------ EventProbe API

    def begin_event(
        self, event_id: int, parent_id: Optional[int], when: float, label: str
    ) -> None:
        if when != self._now:
            self._now = when
            self._slots.clear()
        self._parents[event_id] = parent_id
        self._labels[event_id] = label
        self._current = event_id

    def end_event(self) -> None:
        self._current = None

    # -------------------------------------------------------- installation

    def install(self, sim: Simulator) -> None:
        """Attach to ``sim`` and become the process-wide :data:`DETECTOR`."""
        global DETECTOR
        sim.probe = self
        DETECTOR = self

    def uninstall(self, sim: Optional[Simulator] = None) -> None:
        global DETECTOR
        if sim is not None and sim.probe is self:
            sim.probe = None
        if DETECTOR is self:
            DETECTOR = None

    # ----------------------------------------------------------- accesses

    def _is_ancestor(self, a: int, b: int) -> bool:
        """True when event ``a`` transitively scheduled event ``b``."""
        cur = self._parents.get(b)
        while cur is not None:
            if cur == a:
                return True
            cur = self._parents.get(cur)
        return False

    def note(self, mode: str, owner: str, attr: str, key: Hashable) -> None:
        event = self._current
        if event is None:
            return  # driver context: sequential, cannot race
        slot = (owner, attr, key)
        prior = self._slots.setdefault(slot, [])
        for access in prior:
            if access.event == event:
                continue
            if access.mode == "read" and mode == "read":
                continue
            if self._is_ancestor(access.event, event) or self._is_ancestor(
                event, access.event
            ):
                continue
            self.conflict_count += 1
            fingerprint = (slot, self._labels[access.event], self._labels[event])
            if fingerprint in self._reported or len(self.conflicts) >= MAX_CONFLICTS:
                continue
            self._reported.add(fingerprint)
            self.conflicts.append(
                Conflict(
                    when=self._now,
                    owner=owner,
                    attr=attr,
                    key=repr(key),
                    first_event=self._labels[access.event],
                    first_mode=access.mode,
                    second_event=self._labels[event],
                    second_mode=mode,
                )
            )
        prior.append(_Access(event, mode))


# --------------------------------------------------------------- tiebreak


def seeded_tiebreak(seed: int) -> Callable[[], float]:
    """A seeded secondary-sort-key source for ``Simulator(tiebreak=...)``.

    Each scheduled event draws one uniform float; same-timestamp events
    then execute in draw order instead of FIFO order — a deterministic,
    replayable permutation of every same-instant batch.
    """
    return random.Random(seed).random


# ----------------------------------------------------------- fingerprints


def _canon(value: Any) -> Any:
    """JSON-stable canonical form: sets sorted, dicts keyed by repr-sorted
    string keys, tuples as lists, floats kept exact via repr."""
    if isinstance(value, dict):
        return {repr(k): _canon(v) for k, v in sorted(value.items(), key=lambda kv: repr(kv[0]))}
    if isinstance(value, (set, frozenset)):
        return sorted(repr(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, float):
        return repr(value)
    return value


def _span_shape(tree: Any, node: Any) -> Tuple[Any, ...]:
    """Order-independent canonical shape of one span subtree."""
    children = sorted(_span_shape(tree, c) for c in tree.children(node.span_id))
    return (node.name, node.site or "", tuple(children))


def fingerprint_system(protocol: Any, causal: Any = None) -> Dict[str, Any]:
    """Observable end-state of an :class:`~repro.replication.async_asr.
    AsyncSwatAsr` run, canonicalized for bit-exact comparison.

    Includes directory rows, unsynced pairs, staleness stamps, query
    outcomes (minus trace ids), logical message counts, and transport
    fault counters; with ``causal`` given, the multiset of span-tree
    shapes.  Excludes incidental internals whose values are arbitrary but
    harmless — event counters, message/trace ids, per-sender version
    numbers — so the comparison tracks *behavior*, not bookkeeping.
    """
    sites = {}
    for node in protocol.topology.nodes:
        site = protocol.sites[node]
        rows = {}
        for seg in site.directory.segments:
            row = site.directory.row(seg)
            rows[str(seg)] = {
                "approx": _canon(row.approx),
                "subscribed": _canon(row.subscribed),
                "interested": _canon(row.interested),
                "read_counts": _canon(row.read_counts),
                "local_reads": row.local_reads,
                "write_count": row.write_count,
            }
        sites[node] = {
            "rows": rows,
            "unsynced": {
                child: sorted(str(s) for s in segs)
                for child, segs in sorted(site.unsynced.items())
            },
            "last_update_at": _canon(
                {str(seg): at for seg, at in site.last_update_at.items()}
            ),
        }
    outcomes = [
        {
            "client": o.client,
            "value": _canon(o.value),
            "interval": _canon(o.interval),
            "degraded": o.degraded,
            "stale_since": _canon(o.stale_since),
            "served_by": o.served_by,
            "issued_at": _canon(o.issued_at),
            "answered_at": _canon(o.answered_at),
        }
        for o in protocol.query_outcomes
    ]
    fp: Dict[str, Any] = {
        "sites": sites,
        "outcomes": outcomes,
        "messages": _canon(protocol.stats.snapshot()),
        "fault_counters": _canon(protocol.transport.fault_counters()),
        "final_time": _canon(protocol.sim.now),
    }
    if causal is not None:
        shapes = [
            repr(_span_shape(tree, tree.root)) for tree in causal.trees()
        ]
        fp["trace_topology"] = sorted(shapes)
    return fp


def fingerprint_digest(fp: Dict[str, Any]) -> str:
    """Short stable digest of a fingerprint (what CI logs on success)."""
    payload = json.dumps(fp, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def first_divergence(
    baseline: Any, perturbed: Any, path: str = "$"
) -> Optional[Dict[str, str]]:
    """Depth-first search for the first component where two fingerprints
    differ; returns ``{"path", "baseline", "perturbed"}`` or ``None``."""
    if type(baseline) is not type(perturbed):
        return {
            "path": path,
            "baseline": f"{type(baseline).__name__}: {baseline!r}",
            "perturbed": f"{type(perturbed).__name__}: {perturbed!r}",
        }
    if isinstance(baseline, dict):
        for key in sorted(set(baseline) | set(perturbed)):
            if key not in baseline or key not in perturbed:
                return {
                    "path": f"{path}.{key}",
                    "baseline": repr(baseline.get(key, "<absent>")),
                    "perturbed": repr(perturbed.get(key, "<absent>")),
                }
            hit = first_divergence(baseline[key], perturbed[key], f"{path}.{key}")
            if hit is not None:
                return hit
        return None
    if isinstance(baseline, list):
        if len(baseline) != len(perturbed):
            return {
                "path": f"{path}.length",
                "baseline": str(len(baseline)),
                "perturbed": str(len(perturbed)),
            }
        for i, (a, b) in enumerate(zip(baseline, perturbed)):
            hit = first_divergence(a, b, f"{path}[{i}]")
            if hit is not None:
                return hit
        return None
    if baseline != perturbed:
        return {"path": path, "baseline": repr(baseline), "perturbed": repr(perturbed)}
    return None


# -------------------------------------------------------------- the shake


def run_shake(
    seed: int = 0,
    permutations: int = 8,
    quick: bool = False,
    detect_races: bool = True,
) -> Dict[str, Any]:
    """Replay the chaos scenario under ``permutations`` seeded tie-break
    permutations and return a JSON-friendly report.

    The report's ``divergences`` list is empty on a deterministic system;
    each entry is a minimized repro: the scenario seed, the permutation
    index, its tie-break seed, and the first divergent fingerprint
    component.  ``conflicts`` carries the runtime race detector's findings
    from the baseline run (``detect_races=False`` skips that pass).
    """
    if permutations < 1:
        raise ValueError("permutations must be positive")

    # Imported lazily: shake is imported by the transport at module load,
    # and pulling the replication stack in up front would be a cycle.
    from ..data.synthetic import uniform_stream
    from ..data.workload import RandomWorkload
    from ..network.faults import CrashWindow, FaultPlan
    from ..network.topology import Topology
    from ..obs.causal import CausalTracer
    from ..replication.async_asr import AsyncSwatAsr

    n_clients = 4 if quick else 6
    window_size = 16 if quick else 32
    n_queries = 6 if quick else 12
    latency, jitter = 0.05, 0.02
    drop_rate, duplicate_rate = 0.1, 0.05
    query_period = 1.0

    def run_once(
        tiebreak: Optional[Callable[[], float]], detector: Optional[RaceDetector]
    ) -> Dict[str, Any]:
        topo = Topology.complete_binary_tree(n_clients)
        interior = next(n for n in topo.nodes if n != topo.root and topo.children(n))
        fill = float(window_size)
        run_span = n_queries * query_period
        plan = FaultPlan(
            seed=seed + 1,
            drop_rate=drop_rate,
            duplicate_rate=duplicate_rate,
            jitter=jitter,
            crashes=(
                CrashWindow(
                    interior, fill + run_span / 3.0, fill + 2.0 * run_span / 3.0
                ),
            ),
        )
        sim = Simulator(tiebreak=tiebreak)
        causal = CausalTracer(seed=seed)
        protocol = AsyncSwatAsr(
            topo,
            window_size,
            latency=latency,
            sim=sim,
            faults=plan,
            retry_timeout=0.1,
            max_retries=2,
            causal=causal,
        )
        if detector is not None:
            detector.install(sim)
        try:
            stream = uniform_stream(window_size + n_queries, seed=seed)
            for i in range(window_size):
                protocol.on_data(float(stream[i]), now=float(i))
            workload = RandomWorkload(
                window_size,
                max_length=8,
                precision_low=2.0,
                precision_high=10.0,
                seed=seed,
            )
            clients = topo.clients
            for q in range(n_queries):
                at = fill + q * query_period
                protocol.on_data(float(stream[window_size + q]), now=at)
                protocol.on_query(clients[q % len(clients)], workload.next(), now=at)
            protocol.on_phase_end()
        finally:
            if detector is not None:
                detector.uninstall(sim)
        return fingerprint_system(protocol, causal)

    detector = RaceDetector() if detect_races else None
    baseline = run_once(None, detector)
    divergences: List[Dict[str, Any]] = []
    for k in range(1, permutations + 1):
        tiebreak_seed = seed * 1_000_003 + k
        perturbed = run_once(seeded_tiebreak(tiebreak_seed), None)
        hit = first_divergence(baseline, perturbed)
        if hit is not None:
            divergences.append(
                {
                    "permutation": k,
                    "tiebreak_seed": tiebreak_seed,
                    "scenario_seed": seed,
                    **hit,
                }
            )
    report: Dict[str, Any] = {
        "seed": seed,
        "permutations": permutations,
        "quick": quick,
        "fingerprint_digest": fingerprint_digest(baseline),
        "divergences": divergences,
        "conflicts": [c.summary() for c in (detector.conflicts if detector else [])],
        "conflict_count": detector.conflict_count if detector else 0,
        "deterministic": not divergences
        and (detector is None or detector.conflict_count == 0),
    }
    return report


def format_shake_report(report: Dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`run_shake` report."""
    lines = [
        "== repro shake ==",
        f"  scenario seed={report['seed']} permutations={report['permutations']}"
        + (" (quick)" if report.get("quick") else ""),
        f"  baseline fingerprint {report['fingerprint_digest']}",
    ]
    if report["conflict_count"]:
        lines.append(
            f"  RUNTIME RACES: {report['conflict_count']} conflicting "
            "same-timestamp access pair(s)"
        )
        for c in report["conflicts"]:
            lines.append(
                f"    t={c['when']:.6f} {c['slot']}: {c['first']} vs {c['second']}"
            )
    else:
        lines.append("  runtime races: none")
    if report["divergences"]:
        lines.append(f"  DIVERGENCES: {len(report['divergences'])} permutation(s)")
        for d in report["divergences"]:
            lines.append(
                f"    permutation {d['permutation']} (tiebreak_seed="
                f"{d['tiebreak_seed']}): first divergence at {d['path']}"
            )
            lines.append(f"      baseline:  {d['baseline']}")
            lines.append(f"      perturbed: {d['perturbed']}")
    else:
        lines.append(
            f"  divergences: none — {report['permutations']} permutation(s) "
            "bit-identical"
        )
    return "\n".join(lines)
