"""Periodic tasks on top of the event simulator (data / query / phase timers)."""

from __future__ import annotations

from typing import Callable, Optional

from .events import Simulator

__all__ = ["PeriodicTask"]


class PeriodicTask:
    """Re-schedules a callback every ``period`` units of virtual time.

    The callback receives the current tick count (0-based).  A task can be
    bounded (``max_ticks``) or cancelled; cancellation takes effect before
    the next firing.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        action: Callable[[int], None],
        start_at: Optional[float] = None,
        max_ticks: Optional[int] = None,
    ) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.sim = sim
        self.period = period
        self.action = action
        self.max_ticks = max_ticks
        self.ticks = 0
        self._cancelled = False
        first = sim.now + period if start_at is None else start_at
        sim.schedule_at(first, self._fire)

    def cancel(self) -> None:
        """Stop the task before its next firing."""
        self._cancelled = True

    @property
    def is_active(self) -> bool:
        return not self._cancelled and (self.max_ticks is None or self.ticks < self.max_ticks)

    def _fire(self) -> None:
        if not self.is_active:
            return
        tick = self.ticks
        self.ticks += 1
        self.action(tick)
        if self.is_active:
            self.sim.schedule_after(self.period, self._fire)
