"""A small deterministic discrete-event simulator.

The paper's experiments run in "a discrete event simulator of an environment
with a single data stream" (Section 2.7) with periodic data arrivals (period
``T_d``) and query arrivals (period ``T_q``), and — for the replication study
— phase boundaries.  This simulator provides exactly that: a virtual clock, a
priority queue of timestamped callbacks, and deterministic FIFO ordering for
simultaneous events.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

__all__ = ["Simulator"]

Action = Callable[[], None]


class Simulator:
    """Virtual-time event loop.

    Events scheduled for the same instant execute in scheduling order, which
    keeps runs reproducible.  Time is a float in seconds of virtual time.
    """

    def __init__(self):
        self._now = 0.0
        self._queue: list = []
        self._counter = itertools.count()
        self._events_run = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_run(self) -> int:
        """Number of events executed so far."""
        return self._events_run

    def schedule_at(self, when: float, action: Action) -> None:
        """Schedule ``action`` at absolute virtual time ``when``."""
        if when < self._now:
            raise ValueError(f"cannot schedule in the past ({when} < {self._now})")
        heapq.heappush(self._queue, (when, next(self._counter), action))

    def schedule_after(self, delay: float, action: Action) -> None:
        """Schedule ``action`` after ``delay`` units of virtual time."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.schedule_at(self._now + delay, action)

    def step(self) -> bool:
        """Execute the next event; return False if the queue is empty."""
        if not self._queue:
            return False
        when, __, action = heapq.heappop(self._queue)
        self._now = when
        self._events_run += 1
        action()
        return True

    def run_until(self, deadline: float) -> None:
        """Run events with timestamp <= ``deadline``; leave ``now == deadline``."""
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
        self._now = max(self._now, deadline)

    def run(self, max_events: Optional[int] = None) -> None:
        """Drain the event queue (optionally capped at ``max_events`` events)."""
        remaining = float("inf") if max_events is None else max_events
        while remaining > 0 and self.step():
            remaining -= 1
