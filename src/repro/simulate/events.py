"""A small deterministic discrete-event simulator.

The paper's experiments run in "a discrete event simulator of an environment
with a single data stream" (Section 2.7) with periodic data arrivals (period
``T_d``) and query arrivals (period ``T_q``), and — for the replication study
— phase boundaries.  This simulator provides exactly that: a virtual clock, a
priority queue of timestamped callbacks, and deterministic FIFO ordering for
simultaneous events.

Tracing: set :attr:`Simulator.tracer` to a :class:`repro.obs.trace.Tracer`
to receive an :class:`~repro.obs.trace.EventSpan` per executed event
(scheduled-at, fired-at, action label, wall-clock duration).  The default is
``None``, so a non-traced run pays one attribute check per event.

Determinism sanitizer hooks (see :mod:`repro.simulate.shake` and
``docs/static-analysis.md``, "Determinism sanitizer"):

* ``tiebreak`` — an optional seeded ``() -> float`` callable that replaces
  the constant secondary sort key of same-timestamp events, deterministically
  *permuting* their execution order.  Code whose outcome is independent of
  same-timestamp tie-breaking produces bit-identical results under any
  tiebreak; ``repro shake`` asserts exactly that.
* ``probe`` — an optional :class:`EventProbe` notified around every executed
  event with the event's id, its scheduling parent's id, the virtual fire
  time, and the label.  The runtime race detector uses this to attribute
  shared-state accesses to events and to excuse causally-ordered pairs.

Both default to ``None`` and cost one attribute check per event when unset.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Callable, List, Optional, Protocol, Tuple

from ..obs.causal import TraceContext
from ..obs.trace import EventSpan, Tracer

__all__ = ["EventProbe", "Simulator"]

Action = Callable[[], None]

# (due time, tie-break key, FIFO sequence / event id, action, trace label,
#  scheduled-at time, causal trace context, scheduling parent's event id)
_QueueEntry = Tuple[
    float, float, int, Action, Optional[str], float, Optional[TraceContext],
    Optional[int],
]


class EventProbe(Protocol):
    """Observer notified around every executed simulator event."""

    def begin_event(
        self, event_id: int, parent_id: Optional[int], when: float, label: str
    ) -> None:
        """The event is about to run; ``parent_id`` is the event during whose
        execution it was scheduled (``None`` for driver-scheduled events)."""
        ...

    def end_event(self) -> None:
        """The event's action returned (or raised)."""
        ...


def _label_of(action: Action) -> str:
    """Best-effort action label for traces (qualified name where available)."""
    return getattr(action, "__qualname__", None) or repr(action)


class Simulator:
    """Virtual-time event loop.

    Events scheduled for the same instant execute in scheduling order, which
    keeps runs reproducible.  Time is a float in seconds of virtual time.

    ``tiebreak``, when given, supplies a secondary sort key per scheduled
    event (drawn once at schedule time), deterministically permuting the
    order of same-timestamp events — the schedule-perturbation mode of
    ``repro shake``.  Distinct timestamps are never reordered.
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        tiebreak: Optional[Callable[[], float]] = None,
    ) -> None:
        self._now = 0.0
        self._queue: List[_QueueEntry] = []
        self._counter = itertools.count()
        self._events_run = 0
        #: Optional structured-trace sink; ``None`` disables tracing.
        self.tracer: Optional[Tracer] = tracer
        #: Optional race-detector hook; ``None`` disables event attribution.
        self.probe: Optional[EventProbe] = None
        self._tiebreak = tiebreak
        self._current_ctx: Optional[TraceContext] = None
        self._current_event: Optional[int] = None

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_run(self) -> int:
        """Number of events executed so far."""
        return self._events_run

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    @property
    def current_context(self) -> Optional[TraceContext]:
        """Causal trace context of the event currently executing.

        Set for the duration of :meth:`step` when the event was scheduled
        with a ``ctx``; code running inside the action (e.g.
        :meth:`repro.network.transport.Transport.send`) reads it to attach
        child spans to the work that caused the event.  ``None`` between
        events and for context-free events.
        """
        return self._current_ctx

    @property
    def current_event(self) -> Optional[int]:
        """Id of the event currently executing (``None`` between events)."""
        return self._current_event

    def schedule_at(
        self,
        when: float,
        action: Action,
        label: Optional[str] = None,
        ctx: Optional[TraceContext] = None,
    ) -> None:
        """Schedule ``action`` at absolute virtual time ``when``.

        ``label`` names the event in trace spans; it defaults to the
        action's qualified name.  ``ctx`` is the causal trace context the
        action runs under (exposed as :attr:`current_context` while it
        fires); ``None`` propagates nothing.
        """
        if when < self._now:
            raise ValueError(f"cannot schedule in the past ({when} < {self._now})")
        tb = 0.0 if self._tiebreak is None else self._tiebreak()
        heapq.heappush(
            self._queue,
            (when, tb, next(self._counter), action, label, self._now,
             ctx, self._current_event),
        )

    def schedule_after(
        self,
        delay: float,
        action: Action,
        label: Optional[str] = None,
        ctx: Optional[TraceContext] = None,
    ) -> None:
        """Schedule ``action`` after ``delay`` units of virtual time."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.schedule_at(self._now + delay, action, label, ctx)

    def step(self) -> bool:
        """Execute the next event; return False if the queue is empty."""
        if not self._queue:
            return False
        when, _tb, seq, action, label, scheduled_at, ctx, parent = heapq.heappop(
            self._queue
        )
        self._now = when
        self._events_run += 1
        self._current_ctx = ctx
        self._current_event = seq
        tracer = self.tracer
        probe = self.probe
        if probe is not None:
            probe.begin_event(seq, parent, when, label or _label_of(action))
        try:
            if tracer is None:
                action()
            else:
                start = time.perf_counter()
                try:
                    action()
                finally:
                    # Emit the span even when the action raises: a trace that
                    # silently loses the very event that failed is useless for
                    # post-mortems, and downstream bookkeeping (e.g. transport
                    # in-flight counters) relies on step() not skipping hooks.
                    tracer.on_event_span(
                        EventSpan(
                            seq=seq,
                            label=label or _label_of(action),
                            scheduled_at=scheduled_at,
                            fired_at=when,
                            duration=time.perf_counter() - start,
                        )
                    )
        finally:
            self._current_ctx = None
            self._current_event = None
            if probe is not None:
                probe.end_event()
        return True

    def run_until(self, deadline: float) -> None:
        """Run events with timestamp <= ``deadline``; leave ``now == deadline``."""
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
        self._now = max(self._now, deadline)

    def run(self, max_events: Optional[int] = None) -> None:
        """Drain the event queue (optionally capped at ``max_events`` events)."""
        remaining = float("inf") if max_events is None else max_events
        while remaining > 0 and self.step():
            remaining -= 1
