"""Discrete-event simulation substrate."""

from .events import Simulator
from .tasks import PeriodicTask

__all__ = ["Simulator", "PeriodicTask"]
