"""Exact byte accounting for SWAT summaries.

Two complementary views of summary memory:

* the *live* count — ``Swat.nbytes`` / ``SwatNode.nbytes`` /
  ``PrefixStats.nbytes``, analytic sums of the backing arrays' ``nbytes``
  (never ``sys.getsizeof``);
* the *configured ceiling* — :func:`config_nbytes`, the closed-form
  steady-state footprint of a ``(window_size, k, min_level)`` configuration.
  A live tree can only ever hold *at most* the ceiling (cold or settling
  trees hold less), so a governor that keeps the sum of ceilings under the
  budget keeps the live total under it too, at every arrival, without ever
  walking a tree per arrival.

:class:`MemoryLedger` is the ensemble-wide incremental aggregate: per-stream
byte counts with an O(1)-maintained total and a peak watermark.  Callers
(:class:`~repro.core.multi.StreamEnsemble`) update entries on extend/refresh
— and, thanks to ``Swat.memory_settled``, stop paying even that once a
stream's footprint has provably stopped changing.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["MemoryLedger", "config_nbytes"]

_FLOAT_BYTES = 8


def config_nbytes(window_size: int, k: int, min_level: int) -> int:
    """Steady-state byte ceiling of a first-``k`` Haar tree configuration.

    Level ``l`` (for ``min_level <= l <= n-2``) keeps three nodes of
    ``min(k, 2^{l+1})`` float64 coefficients; the top level keeps one; the
    raw ring buffer holds ``2^{min_level+1}`` floats.  This matches
    ``Swat.nbytes`` exactly once the tree is warm and settled — the property
    tests in ``tests/test_control.py`` pin that equality.
    """
    if window_size < 4 or window_size & (window_size - 1):
        raise ValueError(f"window_size must be a power of two >= 4, got {window_size}")
    n_levels = window_size.bit_length() - 1
    if not 0 <= min_level < n_levels:
        raise ValueError(f"min_level must be in [0, {n_levels - 1}], got {min_level}")
    if k < 1:
        raise ValueError("k must be >= 1")
    total = (1 << (min_level + 1)) * _FLOAT_BYTES  # ring buffer
    for level in range(min_level, n_levels):
        n_roles = 1 if level == n_levels - 1 else 3
        total += n_roles * min(k, 1 << (level + 1)) * _FLOAT_BYTES
    return total


class MemoryLedger:
    """Incremental per-stream byte ledger with an O(1) total and peak.

    ``set`` replaces one stream's byte count and adjusts the running total
    by the delta; nothing ever re-sums the whole map on the hot path.  The
    ``peak`` watermark records the largest total ever observed — the number
    the ``repro govern`` frontier reports against the budget.
    """

    def __init__(self) -> None:
        self._bytes: Dict[str, int] = {}
        self._total = 0
        self.peak = 0

    def set(self, stream: str, nbytes: int) -> None:
        """Record ``stream``'s current byte count (replacing any previous)."""
        n = int(nbytes)
        if n < 0:
            raise ValueError(f"negative byte count {n} for stream {stream!r}")
        self._total += n - self._bytes.get(stream, 0)
        self._bytes[stream] = n
        if self._total > self.peak:
            self.peak = self._total

    def get(self, stream: str) -> int:
        """Bytes last recorded for ``stream`` (0 when never recorded)."""
        return self._bytes.get(stream, 0)

    def drop(self, stream: str) -> None:
        """Forget a removed stream (idempotent)."""
        self._total -= self._bytes.pop(stream, 0)

    @property
    def total(self) -> int:
        """Current ensemble-wide byte count."""
        return self._total

    def per_stream(self) -> Dict[str, int]:
        """A copy of the per-stream byte map."""
        return dict(self._bytes)

    def __len__(self) -> int:
        return len(self._bytes)

    def __repr__(self) -> str:
        return f"MemoryLedger(streams={len(self._bytes)}, total={self._total}, peak={self.peak})"
