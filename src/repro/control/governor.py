"""Adaptive resource governor: budgeted, hysteretic, phase-aligned.

:class:`ResourceGovernor` closes the loop the paper leaves open: Section 2.5
describes the ``k``/``min_level`` space knobs and Section 2.6 the error they
cost, but nothing *chooses* them.  The governor redistributes a global byte
budget across a :class:`~repro.core.multi.StreamEnsemble`:

* **Hard budget.**  It degrades streams (halving ``k`` first, then raising
  ``min_level``) until the sum of configured steady-state ceilings
  (:func:`~repro.control.accounting.config_nbytes`) fits the budget.  A live
  tree never exceeds its ceiling, so the ledger total provably never exceeds
  the budget after the first governor step — at *every* arrival, not just at
  checkpoints.
* **Hysteresis.**  It upgrades (lowering ``min_level`` first, then doubling
  ``k``) at most one stream per phase, only when the ceilings leave
  ``headroom`` under the budget *after* the upgrade, and only past a
  per-stream cooldown — so a budget sitting near the working set cannot make
  the governor thrash.
* **Error-driven.**  Upgrade priority is the observed per-stream query error
  (the ``ensemble.stream.query_error`` histogram in the obs registry, fed by
  whoever serves queries), falling back to the §2.6 structural proxy (the
  coarsest tree first).  With ``error_target`` set, a stream is upgraded
  only while its observed error exceeds the target.

All decisions happen at phase boundaries only and are pure functions of
(ensemble state, registry state, phase index), so determinism — and the
shake sanitizer — are preserved.  ``enabled=False`` makes the governor a
pure observer: property tests pin that a disabled-governor run is
bit-identical to no governor at all.

:func:`query_error_bound` is the Section 2.6 oracle used by the Hypothesis
tests and the ``repro govern`` frontier: a certified bound on a query's
error computed from the true history, sound under any sequence of live
reconfigurations.

:class:`ReplicaGovernor` applies the same budget idea to the replication
layer: a cap on cached directory rows per client site, enforced by evicting
the least-read unpinned rows at phase end through the existing
unsubscribe machinery.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from ..core.queries import InnerProductQuery
from ..core.swat import Swat
from ..obs import metrics as obs
from ..persist import load_checkpoint, write_checkpoint
from .accounting import config_nbytes

if TYPE_CHECKING:  # avoid a runtime cycle: multi imports repro.control
    from ..core.multi import StreamEnsemble

__all__ = [
    "ResourceGovernor",
    "ReplicaGovernor",
    "query_error_bound",
    "save_governor",
    "load_governor",
]

#: Obs-registry histogram the governor reads for per-stream observed error.
ERROR_METRIC = "ensemble.stream.query_error"


# --------------------------------------------------------------- §2.6 oracle


def query_error_bound(
    tree: Swat,
    history_newest_first: Sequence[float],
    query: InnerProductQuery,
) -> float:
    """Certified §2.6 bound on ``|true - tree.answer(query)|``.

    ``history_newest_first[i]`` must be the true stream value at window
    index ``i`` (index 0 = newest), covering at least every segment of every
    node the query's cover touches — ``2N`` values always suffice, because a
    node's segment can drift at most one full window into the past.

    Soundness rests on the reconstruction invariant that holds under any
    sequence of live :meth:`~repro.core.swat.Swat.reconfigure` calls: a
    node's reconstructed values are always averages of true dyadic
    sub-blocks of its own segment (first-``k`` prefixes are exact, and
    combines of ragged-``k`` children zero-pad, which preserves the
    property).  Hence every per-index estimate lies within
    ``[min, max]`` of the node's true segment, and so does the true value —
    except for extrapolated indices, whose true value is adjoined to the
    range.  Raw-leaf indices are exact.  Returns ``inf`` when the provided
    history is too short to certify a bound.
    """
    hist = np.asarray(history_newest_first, dtype=np.float64).reshape(-1)
    indices = list(query.indices)
    if not indices:
        return 0.0
    weights = np.asarray(query.weights, dtype=np.float64).reshape(-1)
    abs_w = {i: abs(float(w)) for i, w in zip(indices, weights)}
    n_raw = tree.raw_leaf_count()
    remaining = [i for i in indices if i >= n_raw]
    if not remaining:
        return 0.0  # served exactly from the raw leaves d_0/d_1
    cover = tree.cover(remaining)
    extrapolated = set(cover.extrapolated)
    now = tree.time
    bound = 0.0
    for node, assigned in cover.assignments.items():
        lo = now - node.end_time
        hi = lo + node.segment_length - 1
        if hi >= hist.size:
            return float("inf")
        seg = hist[lo : hi + 1]
        smin = float(seg.min())
        smax = float(seg.max())
        for i in assigned:
            if i in extrapolated:
                if i >= hist.size:
                    return float("inf")
                v = float(hist[i])
                bound += abs_w[i] * (max(smax, v) - min(smin, v))
            else:
                bound += abs_w[i] * (smax - smin)
    return bound


# ------------------------------------------------------------------ governor


class ResourceGovernor:
    """Redistributes a global memory budget across an ensemble's streams.

    Parameters
    ----------
    budget_bytes:
        Global budget on the sum of per-stream configured byte ceilings
        (``None`` = monitor only, never reconfigure).
    enabled:
        ``False`` makes :meth:`on_phase` a pure observer (ledger refresh and
        gauges only) — property-tested to be bit-identical to having no
        governor at all.
    error_target:
        When set, streams are upgraded only while their observed mean query
        error (from the obs registry) exceeds this target.
    k_range:
        Inclusive ``(floor, ceiling)`` for per-stream ``k``.
    min_level_range:
        Inclusive ``(floor, ceiling)`` for per-stream ``min_level``;
        defaults to the full ``[0, log2(N) - 1]`` range of the ensemble.
    cooldown_phases:
        Minimum phases between an upgrade of a stream and its previous
        reconfiguration (degrades ignore the cooldown: the budget is hard).
    headroom:
        Hysteresis margin: upgrades happen only while the post-upgrade
        ceiling total stays at or under ``budget * (1 - headroom)``.
    """

    def __init__(
        self,
        budget_bytes: Optional[int] = None,
        *,
        enabled: bool = True,
        error_target: Optional[float] = None,
        k_range: Tuple[int, int] = (1, 64),
        min_level_range: Optional[Tuple[int, int]] = None,
        cooldown_phases: int = 1,
        headroom: float = 0.1,
    ) -> None:
        if budget_bytes is not None and budget_bytes < 1:
            raise ValueError("budget_bytes must be >= 1 (or None)")
        if not 1 <= k_range[0] <= k_range[1]:
            raise ValueError(f"invalid k_range {k_range}")
        if cooldown_phases < 0:
            raise ValueError("cooldown_phases must be >= 0")
        if not 0.0 <= headroom < 1.0:
            raise ValueError("headroom must be in [0, 1)")
        self.budget_bytes = None if budget_bytes is None else int(budget_bytes)
        self.enabled = bool(enabled)
        self.error_target = None if error_target is None else float(error_target)
        self.k_range = (int(k_range[0]), int(k_range[1]))
        self.min_level_range = (
            None
            if min_level_range is None
            else (int(min_level_range[0]), int(min_level_range[1]))
        )
        self.cooldown_phases = int(cooldown_phases)
        self.headroom = float(headroom)
        self.phase_count = 0
        self.reconfig_count = 0
        self._last_change: Dict[str, int] = {}
        self._ensemble: Optional["StreamEnsemble"] = None
        # Stream configurations captured by from_state, applied at bind time.
        self._restored_streams: Optional[Dict[str, Dict[str, int]]] = None

    # -------------------------------------------------------------- binding

    def bind(self, ensemble: "StreamEnsemble") -> None:
        """Attach to an ensemble (called by ``attach_governor``).

        A governor restored by :func:`load_governor` re-applies its recorded
        per-stream configurations to the ensemble's trees here, so a warm
        restart resumes with the negotiated shapes instead of re-learning
        them.
        """
        self._ensemble = ensemble
        if self._restored_streams:
            for name, cfg in self._restored_streams.items():
                if name in ensemble.streams:
                    ensemble.tree(name).reconfigure(
                        k=cfg["k"], min_level=cfg["min_level"]
                    )
            self._restored_streams = None

    def _bound(self) -> "StreamEnsemble":
        if self._ensemble is None:
            raise RuntimeError(
                "governor is not attached to an ensemble "
                "(use StreamEnsemble.attach_governor)"
            )
        return self._ensemble

    # ---------------------------------------------------------- phase steps

    def on_phase(self, phase_index: int) -> bool:
        """One governor step at a phase boundary; returns True on any change.

        Refreshes the ledger, publishes governor gauges, and — when enabled
        with a budget — rebalances the ensemble.  Deterministic: the outcome
        depends only on the ensemble's tree shapes, the registry's observed
        errors, and ``phase_index``.
        """
        ens = self._bound()
        self.phase_count += 1
        ens.refresh_ledger()
        if obs.ENABLED:
            obs.gauge("governor.ledger_bytes").set(float(ens.ledger.total))
            if self.budget_bytes is not None:
                obs.gauge("governor.budget_bytes").set(float(self.budget_bytes))
        if not self.enabled or self.budget_bytes is None or not len(ens):
            return False
        changed = self._rebalance(int(phase_index))
        if changed:
            ens.refresh_ledger()
            if obs.ENABLED:
                obs.counter("governor.reconfigurations").inc(changed)
        return changed > 0

    def _rebalance(self, phase: int) -> int:
        """Degrade to fit the hard budget, else maybe upgrade one stream."""
        ens = self._bound()
        assert self.budget_bytes is not None
        budget = self.budget_bytes
        window = ens.window_size
        n_levels = window.bit_length() - 1
        lvl_lo, lvl_hi = self.min_level_range or (0, n_levels - 1)
        k_lo = self.k_range[0]
        k_hi = min(self.k_range[1], window)
        names = ens.streams  # sorted, so every choice below is deterministic
        cfg: Dict[str, Tuple[int, int]] = {
            n: (ens.tree(n).k, ens.tree(n).min_level) for n in names
        }
        ceiling = {n: config_nbytes(window, *cfg[n]) for n in names}

        def degraded(c: Tuple[int, int]) -> Optional[Tuple[int, int]]:
            k, m = c
            if k > k_lo:
                return (max(k_lo, k // 2), m)
            if m < lvl_hi:
                return (k, m + 1)
            return None

        def upgraded(c: Tuple[int, int]) -> Optional[Tuple[int, int]]:
            k, m = c
            if m > lvl_lo:
                return (k, m - 1)
            if k < k_hi:
                return (min(k_hi, k * 2), m)
            return None

        # Hard budget first: shrink the biggest stream until the ceilings fit.
        while sum(ceiling.values()) > budget:
            victims = [n for n in names if degraded(cfg[n]) is not None]
            if not victims:
                break  # every stream is already at the floor configuration
            victim = max(victims, key=lambda n: (ceiling[n], n))
            new_cfg = degraded(cfg[victim])
            assert new_cfg is not None
            cfg[victim] = new_cfg
            ceiling[victim] = config_nbytes(window, *new_cfg)
        over_budget = sum(ceiling.values()) > budget

        # Hysteresis upgrade: one stream per phase, only with headroom left
        # after the upgrade, only past the cooldown, worst observed error
        # first (structurally coarsest first when no error has been seen).
        threshold = budget * (1.0 - self.headroom)
        degrades = [n for n in names if cfg[n] != (ens.tree(n).k, ens.tree(n).min_level)]
        if not degrades and not over_budget and sum(ceiling.values()) <= threshold:
            ranked: List[Tuple[float, int, int, str]] = []
            for n in names:
                up = upgraded(cfg[n])
                if up is None:
                    continue
                if phase - self._last_change.get(n, -(1 << 30)) < self.cooldown_phases:
                    continue
                total_after = sum(ceiling.values()) - ceiling[n] + config_nbytes(
                    window, *up
                )
                if total_after > threshold:
                    continue
                err = self._observed_error(n)
                if self.error_target is not None and (
                    err is None or err <= self.error_target
                ):
                    continue
                ranked.append((err or 0.0, cfg[n][1], -cfg[n][0], n))
            if ranked:
                pick = max(ranked)[3]
                up = upgraded(cfg[pick])
                assert up is not None
                cfg[pick] = up

        changed = 0
        for n in names:
            tree = ens.tree(n)
            if cfg[n] != (tree.k, tree.min_level):
                tree.reconfigure(k=cfg[n][0], min_level=cfg[n][1])
                self._last_change[n] = phase
                self.reconfig_count += 1
                changed += 1
        return changed

    def _observed_error(self, name: str) -> Optional[float]:
        """Mean observed query error for ``name`` from the obs registry."""
        hist = obs.get_registry().histogram(ERROR_METRIC, stream=name)
        if hist.count == 0:
            return None
        return float(hist.mean)

    # ----------------------------------------------------------- persistence

    def to_state(self) -> Dict[str, Any]:
        """Checkpointable snapshot: configuration, counters, stream shapes."""
        streams: Dict[str, Dict[str, int]] = {}
        if self._ensemble is not None:
            for n in self._ensemble.streams:
                tree = self._ensemble.tree(n)
                streams[n] = {"k": tree.k, "min_level": tree.min_level}
        elif self._restored_streams:
            streams = {n: dict(c) for n, c in self._restored_streams.items()}
        return {
            "budget_bytes": self.budget_bytes,
            "enabled": self.enabled,
            "error_target": self.error_target,
            "k_range": list(self.k_range),
            "min_level_range": (
                None if self.min_level_range is None else list(self.min_level_range)
            ),
            "cooldown_phases": self.cooldown_phases,
            "headroom": self.headroom,
            "phase_count": self.phase_count,
            "reconfig_count": self.reconfig_count,
            "last_change": dict(self._last_change),
            "streams": streams,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "ResourceGovernor":
        """Rebuild a governor from :meth:`to_state` (unbound; see :meth:`bind`)."""
        try:
            gov = cls(
                state["budget_bytes"],
                enabled=bool(state["enabled"]),
                error_target=state["error_target"],
                k_range=(int(state["k_range"][0]), int(state["k_range"][1])),
                min_level_range=(
                    None
                    if state["min_level_range"] is None
                    else (
                        int(state["min_level_range"][0]),
                        int(state["min_level_range"][1]),
                    )
                ),
                cooldown_phases=int(state["cooldown_phases"]),
                headroom=float(state["headroom"]),
            )
            gov.phase_count = int(state["phase_count"])
            gov.reconfig_count = int(state["reconfig_count"])
            gov._last_change = {
                str(n): int(p) for n, p in dict(state["last_change"]).items()
            }
            gov._restored_streams = {
                str(n): {"k": int(c["k"]), "min_level": int(c["min_level"])}
                for n, c in dict(state["streams"]).items()
            }
        except (KeyError, TypeError, IndexError) as exc:
            raise ValueError(f"malformed governor state: {exc}") from exc
        return gov


def save_governor(
    path: str, governor: ResourceGovernor, meta: Optional[Mapping[str, Any]] = None
) -> int:
    """Persist a governor through the standard checkpoint container."""
    return write_checkpoint(path, "governor", governor.to_state(), meta)


def load_governor(path: str) -> ResourceGovernor:
    """Load a governor checkpoint written by :func:`save_governor`."""
    state, _meta = load_checkpoint(path, "governor")
    return ResourceGovernor.from_state(state)


# ---------------------------------------------------------------- replication


class ReplicaGovernor:
    """Cache-row budget for replicated sites (:class:`AsyncSwatAsr`).

    Caps the number of cached directory rows a client site may hold.  At
    phase end — after the protocol's own client-contraction pass — the site
    evicts its least-useful unpinned rows (fewest ``local_reads``, directory
    order as the tie-break) through the ordinary unsubscribe path, so the
    parent's bookkeeping and any interior subscribers stay consistent and
    the site simply re-negotiates precision later if interest returns.
    Rows with subscribed children are pinned: evicting them would break the
    Section 3 precision chain.  ``governor=None`` on the ASR keeps today's
    behavior bit-identically.
    """

    def __init__(self, max_cached_rows: int) -> None:
        if max_cached_rows < 0:
            raise ValueError("max_cached_rows must be >= 0")
        self.max_cached_rows = int(max_cached_rows)
        self.rows_evicted = 0

    def select_evictions(
        self, rows: Sequence[Tuple[Any, int, bool]]
    ) -> List[Any]:
        """Segments to evict from one site's ``(segment, reads, pinned)`` rows.

        Deterministic: evicts the fewest-read unpinned rows first, breaking
        ties by the order the rows were given (the directory's segment
        order).  Never returns pinned rows, even if that leaves the site
        over budget.
        """
        over = len(rows) - self.max_cached_rows
        if over <= 0:
            return []
        candidates = [
            (reads, idx, seg)
            for idx, (seg, reads, pinned) in enumerate(rows)
            if not pinned
        ]
        candidates.sort(key=lambda c: (c[0], c[1]))
        return [seg for _reads, _idx, seg in candidates[:over]]
