"""Adaptive resource control: budgets, live reconfiguration, load shedding.

The whole point of SWAT is a *tunable* space/accuracy trade-off — ``k``
coefficients per node and reduced-level trees (Section 2.5) with closed-form
error bounds (Section 2.6).  This subsystem makes the trade-off a live,
budgeted control loop over a :class:`~repro.core.multi.StreamEnsemble`:

* :mod:`repro.control.accounting` — exact byte accounting
  (:class:`MemoryLedger`, :func:`config_nbytes`) with no per-arrival tree
  walks;
* :mod:`repro.control.governor` — :class:`ResourceGovernor`
  redistributes a global memory budget across streams at phase boundaries
  by resizing ``k``/``min_level`` (with hysteresis), plus
  :class:`ReplicaGovernor` for cache-row budgets on replicated sites and
  the Section 2.6 error-bound oracle :func:`query_error_bound`;
* :mod:`repro.control.shedding` — ingest backpressure
  (:class:`ArrivalQueue`) and query admission control
  (:class:`QueryAdmission`, :exc:`AdmissionError`,
  :func:`degraded_answer`).

Everything here is deterministic and acts only at phase boundaries, so the
shake sanitizer and the bit-identity guarantees of the batched paths are
preserved; a disabled governor is property-tested to be a behavioral no-op.
See ``docs/capacity.md``.
"""

from .accounting import MemoryLedger, config_nbytes
from .governor import (
    ReplicaGovernor,
    ResourceGovernor,
    load_governor,
    query_error_bound,
    save_governor,
)
from .shedding import AdmissionError, ArrivalQueue, QueryAdmission, degraded_answer

__all__ = [
    "MemoryLedger",
    "config_nbytes",
    "ResourceGovernor",
    "ReplicaGovernor",
    "query_error_bound",
    "save_governor",
    "load_governor",
    "ArrivalQueue",
    "QueryAdmission",
    "AdmissionError",
    "degraded_answer",
]
