"""Load shedding: ingest backpressure and query admission control.

Overload handling for a governed ensemble, in the same spirit as the
existing degraded-query machinery of the replication layer: when the system
cannot do full-fidelity work it does *predictable, cheaper* work instead of
falling behind.

* :class:`ArrivalQueue` — a bounded queue of synchronized ticks with a
  deterministic **drop-newest** overflow policy (the retained prefix of an
  offered block is always the same for the same offered sequence, so shed
  runs are replayable) and ``shed.*`` counters.
* :class:`QueryAdmission` — a per-phase query admission budget.  Over
  budget, queries either degrade to widened-interval answers
  (:func:`degraded_answer`) or raise :exc:`AdmissionError`, per
  configuration.
* :func:`degraded_answer` — answers a query from the coarsest available
  approximation only: every index is served by the tree's widest filled
  segment average, ``n_extrapolated`` marks all indices, and the error
  bound is infinite (no certificate).  Maximally cheap, never wrong about
  being imprecise.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..core.node import SwatNode
from ..core.queries import InnerProductQuery
from ..core.swat import QueryAnswer, Swat
from ..obs import metrics as obs

__all__ = ["AdmissionError", "ArrivalQueue", "QueryAdmission", "degraded_answer"]


class AdmissionError(RuntimeError):
    """A query batch was refused by admission control (no degradation)."""


class ArrivalQueue:
    """Bounded buffer of synchronized ticks with deterministic drop-newest.

    ``offer`` accepts up to the remaining capacity from the front of the
    offered block and *drops the tail* — newest-first shedding, so what the
    summaries eventually ingest is always a prefix of what arrived, in
    order.  ``drain`` hands back the pending column blocks for ingestion.
    Plain-int counters are always maintained; ``shed.*`` metrics are also
    published when the obs registry is enabled.
    """

    def __init__(self, capacity_ticks: int) -> None:
        if capacity_ticks < 1:
            raise ValueError("capacity_ticks must be >= 1")
        self.capacity_ticks = int(capacity_ticks)
        self._blocks: List[Dict[str, np.ndarray]] = []
        self._pending = 0
        self.ticks_offered = 0
        self.ticks_accepted = 0
        self.ticks_dropped = 0

    @property
    def pending(self) -> int:
        """Ticks currently queued and not yet drained."""
        return self._pending

    def offer(self, columns: Mapping[str, Sequence[float]]) -> int:
        """Enqueue a column block; returns how many ticks were accepted.

        The block must map every stream to an equal-length column (the same
        shape :meth:`StreamEnsemble.extend_columns` takes).  Ticks beyond
        the queue's free space are dropped and counted.
        """
        blocks = {
            name: np.asarray(col, dtype=np.float64).reshape(-1)
            for name, col in columns.items()
        }
        if not blocks:
            return 0
        lengths = {b.size for b in blocks.values()}
        if len(lengths) > 1:
            raise ValueError(
                "column lengths differ — synchronized streams need one value "
                "per tick for every stream"
            )
        n = lengths.pop()
        self.ticks_offered += n
        room = self.capacity_ticks - self._pending
        accepted = min(n, max(0, room))
        dropped = n - accepted
        if accepted:
            self._blocks.append({name: b[:accepted] for name, b in blocks.items()})
            self._pending += accepted
            self.ticks_accepted += accepted
        if dropped:
            self.ticks_dropped += dropped
        if obs.ENABLED:
            obs.counter("shed.ticks_offered").inc(n)
            if accepted:
                obs.counter("shed.ticks_accepted").inc(accepted)
            if dropped:
                obs.counter("shed.ticks_dropped").inc(dropped)
        return accepted

    def drain(self) -> List[Dict[str, np.ndarray]]:
        """Remove and return all pending column blocks, oldest first."""
        out, self._blocks = self._blocks, []
        self._pending = 0
        return out

    def __repr__(self) -> str:
        return (
            f"ArrivalQueue(pending={self._pending}/{self.capacity_ticks}, "
            f"dropped={self.ticks_dropped})"
        )


class QueryAdmission:
    """Per-phase query admission budget.

    At most ``max_queries_per_phase`` queries are served at full fidelity
    between two phase boundaries; the rest are shed.  ``degrade=True``
    (default) sheds by answering through :func:`degraded_answer`;
    ``degrade=False`` sheds by raising :exc:`AdmissionError` so the caller
    can retry after the next boundary.
    """

    def __init__(self, max_queries_per_phase: int, *, degrade: bool = True) -> None:
        if max_queries_per_phase < 1:
            raise ValueError("max_queries_per_phase must be >= 1")
        self.max_queries_per_phase = int(max_queries_per_phase)
        self.degrade = bool(degrade)
        self._used = 0
        self.queries_admitted = 0
        self.queries_shed = 0

    def on_phase(self) -> None:
        """Reset the per-phase budget (called at every phase boundary)."""
        self._used = 0

    def try_admit(self, n_queries: int) -> bool:
        """Admit a batch of ``n_queries`` if budget remains; count either way.

        Admission is all-or-nothing per batch so a sharded serve never mixes
        full and degraded answers within one call.
        """
        if self._used + n_queries <= self.max_queries_per_phase:
            self._used += n_queries
            self.queries_admitted += n_queries
            if obs.ENABLED:
                obs.counter("shed.queries_admitted").inc(n_queries)
            return True
        self.queries_shed += n_queries
        if obs.ENABLED:
            obs.counter("shed.queries_shed").inc(n_queries)
        return False


def degraded_answer(tree: Swat, query: InnerProductQuery) -> QueryAnswer:
    """Widened-interval answer from the coarsest available approximation.

    Every query index is estimated by the segment average of the tree's
    coarsest filled node (falling back to the raw ring buffer, then 0.0 on
    a completely cold tree).  All indices are reported as extrapolated and
    the certified ``error_bound`` is infinite: the answer is honest about
    being a shed-path approximation.
    """
    avg = 0.0
    coarsest: Optional[SwatNode] = None
    for node in reversed(tree.nodes()):  # nodes() is level-ascending
        if node.is_filled:
            avg = node.average()
            coarsest = node
            break
    if coarsest is None and len(tree._buffer):
        avg = float(sum(tree._buffer) / len(tree._buffer))
    indices = list(query.indices)
    estimates = np.full(len(indices), avg, dtype=np.float64)
    weights = np.asarray(query.weights, dtype=np.float64)
    value = float(np.dot(weights, estimates))
    nodes_used: List[SwatNode] = [coarsest] if coarsest is not None else []
    return QueryAnswer(
        value,
        estimates,
        nodes_used,
        n_extrapolated=len(indices),
        error_bound=float("inf"),
    )
